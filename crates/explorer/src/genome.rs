//! The explorer's search space: explicit, mutable failure traces.
//!
//! A [`TraceGenome`] is everything one explored run needs beyond the design under
//! test: the scale, the FTI configuration axis the search varies (checkpoint level
//! and interval) and an explicit multi-event failure schedule. Mutation operators
//! cover every axis the tentpole names — event kind, victim rank/node/rack,
//! iteration alignment against checkpoint and recovery windows, and growing or
//! pruning multi-event chains — and are driven by the deterministic
//! [`proptest::TestRng`], so a (seed, budget) pair always explores the same
//! sequence of candidates.

use match_core::fti::{CheckpointLevel, FtiConfig};
use match_core::mpisim::{FailureKind, FailureSpec, Topology};
use match_core::recovery::{FailureTrace, RecoveryStrategy};
use match_core::runner::experiment_cluster;
use match_core::TraceRunSpec;
use proptest::TestRng;

/// The longest event chain the mutator grows. Three correlated events already
/// reach every compound path (erase a set, then its fallback) while staying far
/// below the driver's restart bound.
pub const MAX_EVENTS: usize = 3;

/// One point of the fault space: a design-independent trace the explorer runs
/// under each enabled design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceGenome {
    /// Ranks of the simulated job.
    pub nprocs: usize,
    /// Main-loop iterations of the synthetic workload.
    pub iterations: u64,
    /// The configured checkpoint level.
    pub level: CheckpointLevel,
    /// The checkpoint interval in iterations.
    pub interval: u64,
    /// The failure schedule (possibly empty: the failure-free trace).
    pub events: Vec<FailureSpec>,
}

impl TraceGenome {
    /// The failure-free genome at the given scale.
    pub fn baseline(nprocs: usize, iterations: u64) -> Self {
        TraceGenome {
            nprocs,
            iterations,
            level: CheckpointLevel::L1,
            interval: 3,
            events: Vec::new(),
        }
    }

    /// The deterministic seed corpus: per checkpoint level one mid-run process
    /// kill and one mid-run node crash (the primary-restore and redundancy-restore
    /// paths), plus a pre-checkpoint kill (the `scratch` path) and the failure-free
    /// baseline (the `fresh` path). Together the seeds already reach the full
    /// single-event taxonomy; mutation explores alignments, racks and chains.
    pub fn seeds(nprocs: usize, iterations: u64, topology: &Topology) -> Vec<TraceGenome> {
        let mid = (iterations / 2).max(2);
        let node = 1usize.min(topology.nnodes().saturating_sub(1));
        let mut seeds = vec![TraceGenome::baseline(nprocs, iterations)];
        for level in CheckpointLevel::ALL {
            let base = TraceGenome {
                nprocs,
                iterations,
                level,
                interval: 3,
                events: Vec::new(),
            };
            let mut kill = base.clone();
            kill.events = vec![FailureSpec::kill_process(1 % nprocs, mid)];
            seeds.push(kill);
            let mut crash = base.clone();
            crash.events = vec![FailureSpec::crash_node(node, mid)];
            seeds.push(crash);
        }
        let mut early = TraceGenome::baseline(nprocs, iterations);
        // Interval 3, event at iteration 1: nothing has been checkpointed yet, so
        // the respawned world restarts from scratch.
        early.events = vec![FailureSpec::kill_process(0, 1)];
        seeds.push(early);
        seeds
    }

    /// The concrete run this genome describes under `strategy`.
    pub fn spec(&self, strategy: RecoveryStrategy) -> TraceRunSpec {
        let trace = if self.events.is_empty() {
            FailureTrace::none()
        } else {
            FailureTrace::schedule(self.events.clone())
        };
        TraceRunSpec {
            nprocs: self.nprocs,
            iterations: self.iterations,
            strategy,
            fti: FtiConfig::level(self.level).interval(self.interval),
            trace,
        }
    }

    /// The topology this genome's runs are laid out on (victim index bounds for
    /// the mutation operators).
    pub fn topology(&self) -> Topology {
        experiment_cluster(self.nprocs).topology()
    }

    /// Whether every configured checkpoint of this genome survives every event of
    /// its schedule: L4 checkpoints live on the parallel file system, which no
    /// process kill, node crash or rack crash destroys. When additionally at least
    /// one checkpoint completes before the first event fires, a `scratch` restart
    /// is a bug, not a legitimate path — the explorer's survivability property.
    pub fn survivability_expected(&self) -> bool {
        self.level == CheckpointLevel::L4
            && !self.events.is_empty()
            && self.interval < self.iterations
            && self.events.iter().all(|e| e.at_iteration > self.interval)
    }

    /// One mutated copy. Exactly one operator is applied; operators that do not
    /// apply (removing from a single-event chain, …) fall through to retiming.
    pub fn mutate(&self, rng: &mut TestRng, topology: &Topology) -> TraceGenome {
        let mut next = self.clone();
        match rng.below(8) {
            // Retarget a random event at a random valid victim of its kind.
            0 if !next.events.is_empty() => {
                let i = rng.below(next.events.len());
                let bound = match next.events[i].kind {
                    FailureKind::ProcessKill { .. } => self.nprocs,
                    FailureKind::NodeCrash { .. } => topology.nnodes(),
                    FailureKind::RackCrash { .. } => topology.nracks(),
                };
                next.events[i] = next.events[i].with_victim(rng.below(bound));
            }
            // Move a random event to a uniformly random iteration.
            1 if !next.events.is_empty() => {
                let i = rng.below(next.events.len());
                let at = 1 + rng.below(self.iterations as usize) as u64;
                next.events[i] = next.events[i].with_iteration(at);
            }
            // Flip a random event's kind (rebuilding a valid victim).
            2 if !next.events.is_empty() => {
                let i = rng.below(next.events.len());
                let at = next.events[i].at_iteration;
                next.events[i] = match rng.below(3) {
                    0 => FailureSpec::kill_process(rng.below(self.nprocs), at),
                    1 => FailureSpec::crash_node(rng.below(topology.nnodes()), at),
                    _ => FailureSpec::crash_rack(rng.below(topology.nracks()), at),
                };
            }
            // Grow the chain by one event.
            3 if next.events.len() < MAX_EVENTS => {
                let at = 1 + rng.below(self.iterations as usize) as u64;
                next.events
                    .push(FailureSpec::kill_process(rng.below(self.nprocs), at));
            }
            // Prune the chain by one event.
            4 if next.events.len() > 1 => {
                let i = rng.below(next.events.len());
                next.events.remove(i);
            }
            // Reconfigure the checkpoint level.
            5 => {
                next.level = CheckpointLevel::ALL[rng.below(CheckpointLevel::ALL.len())];
            }
            // Reconfigure the checkpoint interval.
            6 => {
                next.interval = 1 + rng.below(self.iterations as usize) as u64;
            }
            // Align a random event against a checkpoint window: exactly on a
            // checkpoint iteration, or in the first iteration after one (the
            // recovery-window edge where the freshest state is at stake).
            _ if !next.events.is_empty() => {
                let i = rng.below(next.events.len());
                let periods = (self.iterations / self.interval).max(1);
                let k = 1 + rng.below(periods as usize) as u64;
                let offset = rng.below(2) as u64;
                let at = (k * self.interval + offset).clamp(1, self.iterations);
                next.events[i] = next.events[i].with_iteration(at);
            }
            // Everything above fell through on an empty schedule: plant one event.
            _ => {
                let at = 1 + rng.below(self.iterations as usize) as u64;
                next.events = vec![FailureSpec::kill_process(rng.below(self.nprocs), at)];
            }
        }
        next
    }

    /// A copy with the events replaced (the shrinking hook).
    pub fn with_events(&self, events: Vec<FailureSpec>) -> TraceGenome {
        TraceGenome {
            events,
            ..self.clone()
        }
    }

    /// The canonical little-endian byte encoding (the corpus entry body; also the
    /// genome's content address input). The inverse is [`TraceGenome::decode`].
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40 + self.events.len() * 17);
        out.extend_from_slice(&(self.nprocs as u64).to_le_bytes());
        out.extend_from_slice(&self.iterations.to_le_bytes());
        out.push(self.level.index());
        out.extend_from_slice(&self.interval.to_le_bytes());
        out.extend_from_slice(&(self.events.len() as u32).to_le_bytes());
        for event in &self.events {
            out.push(event_kind_tag(event.kind));
            out.extend_from_slice(&(event.victim_index() as u64).to_le_bytes());
            out.extend_from_slice(&event.at_iteration.to_le_bytes());
        }
        out
    }

    /// Decodes [`TraceGenome::canonical_bytes`]. Any malformation — truncation,
    /// unknown tags, trailing bytes — is `None`, never a panic: a corrupt corpus
    /// entry degrades to re-exploration.
    pub fn decode(bytes: &[u8]) -> Option<TraceGenome> {
        let mut r = Reader { bytes, pos: 0 };
        let nprocs = r.u64()? as usize;
        let iterations = r.u64()?;
        let level = CheckpointLevel::from_index(r.u8()?)?;
        let interval = r.u64()?;
        let nevents = r.u32()? as usize;
        if nevents > MAX_EVENTS {
            return None;
        }
        let mut events = Vec::with_capacity(nevents);
        for _ in 0..nevents {
            let tag = r.u8()?;
            let victim = r.u64()? as usize;
            let at = r.u64()?;
            events.push(event_from_tag(tag, victim, at)?);
        }
        if r.pos != bytes.len() || nprocs < 2 || iterations == 0 || interval == 0 {
            return None;
        }
        Some(TraceGenome {
            nprocs,
            iterations,
            level,
            interval,
            events,
        })
    }
}

/// Stable corpus tag of an event kind (0 kill, 1 node, 2 rack).
pub fn event_kind_tag(kind: FailureKind) -> u8 {
    match kind {
        FailureKind::ProcessKill { .. } => 0,
        FailureKind::NodeCrash { .. } => 1,
        FailureKind::RackCrash { .. } => 2,
    }
}

/// The human-readable name of an event kind (the replay-artifact spelling).
pub fn event_kind_name(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::ProcessKill { .. } => "kill",
        FailureKind::NodeCrash { .. } => "node",
        FailureKind::RackCrash { .. } => "rack",
    }
}

/// The inverse of [`event_kind_tag`] (`None` for unknown tags).
pub fn event_from_tag(tag: u8, victim: usize, at_iteration: u64) -> Option<FailureSpec> {
    match tag {
        0 => Some(FailureSpec::kill_process(victim, at_iteration)),
        1 => Some(FailureSpec::crash_node(victim, at_iteration)),
        2 => Some(FailureSpec::crash_rack(victim, at_iteration)),
        _ => None,
    }
}

/// The inverse of [`event_kind_name`] (`None` for unknown names).
pub fn event_from_name(name: &str, victim: usize, at_iteration: u64) -> Option<FailureSpec> {
    match name {
        "kill" => Some(FailureSpec::kill_process(victim, at_iteration)),
        "node" => Some(FailureSpec::crash_node(victim, at_iteration)),
        "rack" => Some(FailureSpec::crash_rack(victim, at_iteration)),
        _ => None,
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> TraceGenome {
        let mut g = TraceGenome::baseline(8, 12);
        g.level = CheckpointLevel::L3;
        g.events = vec![
            FailureSpec::crash_node(1, 7),
            FailureSpec::kill_process(3, 9),
        ];
        g
    }

    #[test]
    fn canonical_bytes_round_trip() {
        let g = genome();
        assert_eq!(TraceGenome::decode(&g.canonical_bytes()), Some(g));
        let empty = TraceGenome::baseline(4, 6);
        assert_eq!(TraceGenome::decode(&empty.canonical_bytes()), Some(empty));
    }

    #[test]
    fn every_truncation_decodes_to_none() {
        let bytes = genome().canonical_bytes();
        for len in 0..bytes.len() {
            assert!(TraceGenome::decode(&bytes[..len]).is_none(), "prefix {len}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(TraceGenome::decode(&trailing).is_none());
    }

    #[test]
    fn bad_tags_decode_to_none() {
        let mut bytes = genome().canonical_bytes();
        bytes[16] = 9; // the level index
        assert!(TraceGenome::decode(&bytes).is_none());
    }

    #[test]
    fn seeds_cover_every_level_and_both_extremes() {
        let g = TraceGenome::baseline(8, 12);
        let seeds = TraceGenome::seeds(8, 12, &g.topology());
        // Baseline + 2 per level + the pre-checkpoint kill.
        assert_eq!(seeds.len(), 2 + 2 * CheckpointLevel::ALL.len());
        assert!(seeds.iter().any(|s| s.events.is_empty()));
        assert!(seeds
            .iter()
            .any(|s| s.events.iter().any(|e| e.at_iteration <= s.interval)));
        for level in CheckpointLevel::ALL {
            assert!(seeds
                .iter()
                .any(|s| s.level == level && !s.events.is_empty()));
        }
    }

    #[test]
    fn mutation_is_deterministic_and_stays_in_bounds() {
        let base = genome();
        let topology = base.topology();
        let mut a = proptest::TestRng::deterministic("mutate", 0);
        let mut b = proptest::TestRng::deterministic("mutate", 0);
        let mut ga = base.clone();
        let mut gb = base.clone();
        for _ in 0..200 {
            ga = ga.mutate(&mut a, &topology);
            gb = gb.mutate(&mut b, &topology);
            assert_eq!(ga, gb);
            assert!(ga.events.len() <= MAX_EVENTS);
            assert!(ga.interval >= 1 && ga.interval <= ga.iterations);
            for e in &ga.events {
                assert!(e.at_iteration >= 1 && e.at_iteration <= ga.iterations);
                let bound = match e.kind {
                    FailureKind::ProcessKill { .. } => ga.nprocs,
                    FailureKind::NodeCrash { .. } => topology.nnodes(),
                    FailureKind::RackCrash { .. } => topology.nracks(),
                };
                assert!(e.victim_index() < bound);
            }
        }
    }

    #[test]
    fn survivability_expectation_is_l4_after_first_checkpoint() {
        let mut g = TraceGenome::baseline(8, 12);
        g.level = CheckpointLevel::L4;
        g.events = vec![FailureSpec::crash_rack(0, 7)];
        assert!(g.survivability_expected());
        g.events[0] = g.events[0].with_iteration(2); // before the first checkpoint
        assert!(!g.survivability_expected());
        g.events[0] = g.events[0].with_iteration(7);
        g.level = CheckpointLevel::L1;
        assert!(!g.survivability_expected());
    }
}
