//! # match-explorer — coverage-guided fault-space exploration with trace shrinking
//!
//! The figure matrices sample the fault space the way the paper does: one seeded
//! random failure per run. This crate searches it instead. A [`search::Explorer`]
//! mutates explicit failure traces ([`genome::TraceGenome`]: event kinds, victim
//! rank/node/rack, iteration alignment against checkpoint and recovery windows,
//! multi-event chains) and runs each candidate through the uncached
//! [`match_core::run_trace`] entry point. The feedback signal is *structured
//! recovery-path coverage*: every attempt of a run reports the
//! [`recovery::CoveragePath`](match_core::recovery::CoveragePath) it exercised
//! (which checkpoint level actually served the restore, through which redundancy
//! mechanism, whether the world shrank, how many erasures were absorbed), and a
//! mutation is kept exactly when its run reaches a path signature no earlier run of
//! the same design did.
//!
//! While searching, every novel run is checked against the explorer's properties
//! (see [`search::Property`]): bit-identical replay, the closed-form failure-free
//! oracle for the non-shrinking designs, and survivability of configurations whose
//! checkpoints live on storage the injected failures cannot destroy. On a
//! violation, the trace is shrunk to a minimal reproducer by deterministic
//! event-removal and value-bisection (routed through the workspace `proptest`
//! shim's [`proptest::shrink`] module) and emitted as a replayable JSON artifact
//! ([`replay`]).
//!
//! Everything is deterministic: the mutation RNG is seeded, `run_trace` results
//! are bit-identical across scheduler backends and worker counts, and all
//! aggregation is over ordered containers — so the coverage report is
//! byte-identical across `MATCH_JOBS`, `MATCH_BACKEND` and `MATCH_WORKERS`.
//!
//! Knobs (all optional):
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `MATCH_EXPLORE_BUDGET` | 48 | traces evaluated per design |
//! | `MATCH_EXPLORE_SEED` | 20 | mutation RNG seed |
//! | `MATCH_EXPLORE_PROCS` | 8 | ranks per explored trace |
//! | `MATCH_EXPLORE_ITERS` | 12 | main-loop iterations per trace |
//! | `MATCH_EXPLORE_CORPUS` | off | corpus directory (persistence is opt-in) |
//! | `MATCH_EXPLORE_ASSERT` | unset | label substring asserted unreachable |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod genome;
pub mod replay;
pub mod report;
pub mod search;

use std::path::PathBuf;

pub use genome::TraceGenome;
pub use report::ExploreReport;
pub use search::{ExploreOutcome, Explorer, Property, Violation};

/// Environment variable: traces evaluated per design (default 48).
pub const BUDGET_ENV_VAR: &str = "MATCH_EXPLORE_BUDGET";

/// Environment variable: the mutation RNG seed (default 20).
pub const SEED_ENV_VAR: &str = "MATCH_EXPLORE_SEED";

/// Environment variable: ranks per explored trace (default 8).
pub const PROCS_ENV_VAR: &str = "MATCH_EXPLORE_PROCS";

/// Environment variable: main-loop iterations per trace (default 12).
pub const ITERS_ENV_VAR: &str = "MATCH_EXPLORE_ITERS";

/// Environment variable: the corpus directory. Persistence is opt-in — unset (or
/// `off`) keeps the corpus in memory only, so repeated invocations stay
/// byte-identical; a path both reloads surviving entries as extra seeds and saves
/// every novel genome.
pub const CORPUS_ENV_VAR: &str = "MATCH_EXPLORE_CORPUS";

/// Environment variable: a label substring asserted unreachable. When a run
/// reaches a recovery-path label containing the substring, the explorer treats it
/// as a property violation, shrinks the trace and emits a replayable artifact —
/// the mechanism CI uses to prove the whole find → shrink → replay pipeline on a
/// seeded "violation".
pub const ASSERT_ENV_VAR: &str = "MATCH_EXPLORE_ASSERT";

/// The explorer's run configuration, typically built [`from_env`](ExploreConfig::from_env).
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Ranks per explored trace.
    pub nprocs: usize,
    /// Main-loop iterations per trace.
    pub iterations: u64,
    /// Traces evaluated per design (seed traces included).
    pub budget: u32,
    /// Mutation RNG seed.
    pub seed: u64,
    /// Corpus directory; `None` keeps the corpus in memory only.
    pub corpus: Option<PathBuf>,
    /// Label substring asserted unreachable (see [`ASSERT_ENV_VAR`]).
    pub assert_label: Option<String>,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            nprocs: 8,
            iterations: 12,
            budget: 48,
            seed: 20,
            corpus: None,
            assert_label: None,
        }
    }
}

impl ExploreConfig {
    /// Builds the configuration the `MATCH_EXPLORE_*` environment describes.
    /// Unparsable values fall back to the defaults.
    pub fn from_env() -> Self {
        let mut config = ExploreConfig::default();
        if let Some(n) = parse_env::<usize>(PROCS_ENV_VAR) {
            config.nprocs = n.max(2);
        }
        if let Some(n) = parse_env::<u64>(ITERS_ENV_VAR) {
            config.iterations = n.max(2);
        }
        if let Some(n) = parse_env::<u32>(BUDGET_ENV_VAR) {
            config.budget = n.max(1);
        }
        if let Some(n) = parse_env::<u64>(SEED_ENV_VAR) {
            config.seed = n;
        }
        if let Ok(dir) = std::env::var(CORPUS_ENV_VAR) {
            let dir = dir.trim();
            if !dir.is_empty() && !dir.eq_ignore_ascii_case("off") {
                config.corpus = Some(PathBuf::from(dir));
            }
        }
        if let Ok(label) = std::env::var(ASSERT_ENV_VAR) {
            let label = label.trim();
            if !label.is_empty() {
                config.assert_label = Some(label.to_string());
            }
        }
        config
    }
}

fn parse_env<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let config = ExploreConfig::default();
        assert!(config.nprocs >= 2);
        assert!(config.iterations >= 2);
        assert!(config.budget > 0);
        assert!(config.corpus.is_none());
        assert!(config.assert_label.is_none());
    }
}
