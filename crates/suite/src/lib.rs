//! # match-suite — the MATCH-RS workspace umbrella
//!
//! This crate exists to anchor the workspace-level integration tests (`tests/`) and
//! examples (`examples/`): it depends on every public-facing crate of the suite and
//! re-exports them under one roof. Library users should depend on
//! [`match_core`] directly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use deptrace;
pub use match_core;
pub use match_core::{fti, mpisim, proxies, recovery};
