//! # parking_lot (workspace shim)
//!
//! A minimal, API-compatible stand-in for the subset of the `parking_lot` crate the
//! MATCH-RS suite uses, implemented on `std::sync`. The build environment is fully
//! offline, so external crates are replaced by workspace-local shims; this one exists
//! so the simulator's synchronisation code keeps the ergonomic `lock()`-returns-guard
//! API.
//!
//! Differences from the real crate are deliberate and safe here: lock poisoning is
//! ignored (a panicked rank thread already aborts the whole test), and only the
//! operations the suite calls are provided — [`Mutex::lock`], [`Condvar::wait_for`]
//! and [`Condvar::notify_all`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive whose `lock` returns the guard directly (no
/// `Result`), matching `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Poisoning is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily move the std guard out while
    // the thread sleeps; it is `Some` at every other moment.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed wait: reports whether the wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`], matching `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on the guard's mutex until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(res.timed_out());
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(5));
        }
        t.join().unwrap();
        assert!(*done);
    }
}
