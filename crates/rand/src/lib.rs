//! # rand (workspace shim)
//!
//! A minimal, API-compatible stand-in for the subset of the `rand` crate the MATCH-RS
//! suite uses for seeded fault-plan sampling: [`rngs::StdRng`], [`SeedableRng`] and
//! [`RngExt::random_range`]. The build environment is fully offline, so external
//! crates are replaced by workspace-local shims.
//!
//! The generator is splitmix64 — tiny, fast, and with well-distributed output for a
//! 64-bit state. The suite only requires *deterministic, seed-reproducible* sampling
//! (the paper's "random rank, random iteration" fault plans), not cryptographic or
//! statistical-suite quality, so splitmix64 is a sound choice.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Seedable random-number generators.
pub mod rngs {
    /// The standard deterministic generator (here: splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

/// Sampling operations on top of a raw 64-bit stream.
pub trait RngExt {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value in `range` (e.g. `0..n` or `1..=m`).
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl RngExt for StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Steele, Lea, Flood 2014).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges that can be sampled uniformly from a generator.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<G: RngExt>(self, rng: &mut G) -> Self::Output;
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;

    fn sample<G: RngExt>(self, rng: &mut G) -> usize {
        assert!(self.start < self.end, "cannot sample an empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<u64> {
    type Output = u64;

    fn sample<G: RngExt>(self, rng: &mut G) -> u64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample an empty range");
        let span = end - start + 1; // end == u64::MAX is not used by the suite
        start + rng.next_u64() % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2020);
        for _ in 0..1000 {
            let r = rng.random_range(0..13usize);
            assert!(r < 13);
            let i = rng.random_range(1..=5u64);
            assert!((1..=5).contains(&i));
        }
    }

    #[test]
    fn sampling_covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(3..3usize);
    }
}
