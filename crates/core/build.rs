//! Build script computing the *source fingerprint* of the simulation stack.
//!
//! The persistent result cache (`match_core::persist`) stores `RunReport`s on disk
//! and its whole contract is "recall == recompute, bit-identical". That only holds
//! while the simulator that produced an entry is the simulator reading it back: any
//! edit to the virtual-time machinery, the cost model, the proxies or the recovery
//! designs may legitimately change every simulated number. Instead of asking humans
//! to remember a version bump, this script hashes every source file of the crates
//! that influence simulated results into a 64-bit FNV-1a fingerprint and bakes it
//! into the binary (`MATCH_SOURCE_FINGERPRINT`). Cache entries carry the
//! fingerprint in their header; a mismatch is a silent miss, so a stale cache
//! directory (e.g. a CI `target/` restored from an older commit) degrades to a
//! recompute-and-rewrite, never to serving outdated results.

use std::fs;
use std::path::{Path, PathBuf};

/// The crates whose sources determine simulated results. `bench`/`suite` are
/// deliberately absent: they only present results. The `parking_lot`/`rand`
/// shims are included because the arrival models sample through them.
const FINGERPRINTED_CRATES: [&str; 7] = [
    "core",
    "fti",
    "mpisim",
    "parking_lot",
    "proxies",
    "rand",
    "recovery",
];

fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn fnv1a64(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("manifest dir"));
    let crates_dir = manifest.parent().expect("crates/ dir").to_path_buf();

    let mut files = Vec::new();
    for krate in FINGERPRINTED_CRATES {
        let src = crates_dir.join(krate).join("src");
        println!("cargo:rerun-if-changed={}", src.display());
        collect_sources(&src, &mut files);
    }

    // Hash (stable relative path, contents) pairs in sorted order so the
    // fingerprint does not depend on directory iteration order or the absolute
    // checkout location.
    let mut keyed: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|path| {
            let rel = path
                .strip_prefix(&crates_dir)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            (rel, path)
        })
        .collect();
    keyed.sort();

    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (rel, path) in &keyed {
        fnv1a64(&mut hash, rel.as_bytes());
        fnv1a64(&mut hash, &[0]);
        fnv1a64(&mut hash, &fs::read(path).unwrap_or_default());
    }
    println!("cargo:rustc-env=MATCH_SOURCE_FINGERPRINT={hash:016x}");
}
