//! Content-addressed result caching for the [`SuiteEngine`](crate::engine::SuiteEngine).
//!
//! The paper's evaluation matrices overlap heavily: Fig. 7 re-reports the Fig. 6 runs,
//! the Section V-C findings re-derive from the Fig. 6 matrix, and repeated bench
//! invocations re-run identical cells. The cache keys every run by an
//! [`ExperimentId`] — a canonical encoding of *every* field of an
//! [`Experiment`], including the execution scale and seed — so two
//! experiments collide exactly when they describe the same simulation. Every run —
//! failure-free or with injected failures — is bit-deterministic (failure detection
//! resolves in virtual time), so the cache contract is exact: a recall equals a
//! recompute, bit-identical, always. That is also why the scheduler backend and
//! worker count deliberately do not enter the key.
//!
//! The cache is thread-safe and deduplicates *in-flight* computation: when two engine
//! workers ask for the same cell concurrently, one computes while the other blocks on
//! the cell's condition variable and receives the finished report, so no cell is ever
//! simulated twice within a process.
//!
//! A cache may additionally be backed by a persistent content-addressed
//! [`DiskCache`]: lookups then go memory → disk → compute, and computed reports are
//! written through, so a *fresh process* recalls everything an earlier one computed
//! (see [`crate::persist`] for the on-disk format and crash-safety rules). Only
//! successful reports persist — errors and contained panics stay in-process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use recovery::RunReport;

use crate::engine::SuiteError;
use crate::experiment::Experiment;
use crate::persist::{DiskCache, DiskLookup};

/// Canonical cache key derived from every field of an [`Experiment`].
///
/// Floating-point fields (the execution scale's `linear_fraction`) are encoded through
/// their IEEE-754 bit patterns so the key is `Eq + Hash` without rounding surprises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExperimentId {
    app: u8,
    input: u8,
    strategy: u8,
    nprocs: usize,
    /// The `(nnodes, nracks)` failure-domain layout the experiment runs on. Derived
    /// deterministically from `nprocs` today (the paper layout), but part of the
    /// identity: rack-correlated scenarios and the domain-split cost model make the
    /// simulated result a function of the topology, not just the process count.
    topology: (usize, usize),
    /// Canonical encoding of the failure scenario:
    /// `(tag, node_mtbf_iterations, node_crash_pct, rack_neighbor_pct, recovery_window_pct)`.
    scenario: (u8, u32, u8, u8, u8),
    scale_linear_fraction_bits: u64,
    scale_iteration_cap: u64,
    scale_min_extent: usize,
    repetitions: u32,
    seed: u64,
}

impl ExperimentId {
    /// Derives the canonical id of an experiment.
    pub fn of(experiment: &Experiment) -> Self {
        use proxies::ProxyKind;
        use recovery::RecoveryStrategy;

        let app = match experiment.app {
            ProxyKind::Amg => 0,
            ProxyKind::Comd => 1,
            ProxyKind::Hpccg => 2,
            ProxyKind::Lulesh => 3,
            ProxyKind::MiniFe => 4,
            ProxyKind::MiniVite => 5,
        };
        let input = match experiment.input {
            proxies::InputSize::Small => 0,
            proxies::InputSize::Medium => 1,
            proxies::InputSize::Large => 2,
        };
        let strategy = match experiment.strategy {
            RecoveryStrategy::Restart => 0,
            RecoveryStrategy::Ulfm => 1,
            RecoveryStrategy::Reinit => 2,
            RecoveryStrategy::Shrink => 3,
        };
        let scenario = match experiment.scenario {
            crate::experiment::FailureScenario::None => (0, 0, 0, 0, 0),
            crate::experiment::FailureScenario::SingleRandom => (1, 0, 0, 0, 0),
            crate::experiment::FailureScenario::Mtbf {
                node_mtbf_iterations,
                node_crash_pct,
                rack_neighbor_pct,
                recovery_window_pct,
            } => (
                2,
                node_mtbf_iterations,
                node_crash_pct,
                rack_neighbor_pct,
                recovery_window_pct,
            ),
        };
        // The layout comes from the same ClusterConfig `run_single` builds, so the
        // key can never diverge from the simulated topology. Invalid experiments
        // (nprocs = 0) must still key cleanly: the engine caches their error
        // instead of panicking here.
        let topology = (experiment.nprocs > 0)
            .then(|| crate::runner::experiment_cluster(experiment.nprocs).topology())
            .map(|t| (t.nnodes(), t.nracks()))
            .unwrap_or((0, 0));
        ExperimentId {
            app,
            input,
            strategy,
            nprocs: experiment.nprocs,
            topology,
            scenario,
            scale_linear_fraction_bits: experiment.scale.linear_fraction.to_bits(),
            scale_iteration_cap: experiment.scale.iteration_cap,
            scale_min_extent: experiment.scale.min_extent,
            repetitions: experiment.repetitions.max(1),
            seed: experiment.seed,
        }
    }

    /// The canonical little-endian byte encoding of this id: every field, in
    /// declaration order, with `usize` widened to 8 bytes. This — not
    /// `std::hash::Hash`, whose state is unstable across releases and processes —
    /// is what the persistent cache digests into a content address and stores in
    /// each entry's header for verification (see [`crate::persist`]).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = crate::persist::Enc::new();
        enc.u8(self.app);
        enc.u8(self.input);
        enc.u8(self.strategy);
        enc.usize(self.nprocs);
        enc.usize(self.topology.0);
        enc.usize(self.topology.1);
        enc.u8(self.scenario.0);
        enc.u32(self.scenario.1);
        enc.u8(self.scenario.2);
        enc.u8(self.scenario.3);
        enc.u8(self.scenario.4);
        enc.u64(self.scale_linear_fraction_bits);
        enc.u64(self.scale_iteration_cap);
        enc.usize(self.scale_min_extent);
        enc.u32(self.repetitions);
        enc.u64(self.seed);
        enc.into_bytes()
    }
}

/// Snapshot of the cache's hit/miss counters.
///
/// The memory-level counters (`hits`/`misses`) keep their historical meaning: a
/// "miss" is a lookup the in-memory map could not answer. The `disk_*` counters
/// break those misses down by what happened next: answered from the persistent
/// store (`disk_hits`) or actually simulated (`disk_misses` — this is the "how
/// many simulations ran" counter, and it counts computes even when the disk
/// layer is disabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a finished or in-flight in-memory entry.
    pub hits: u64,
    /// Lookups the in-memory map could not answer.
    pub misses: u64,
    /// Number of cached cells in memory.
    pub entries: usize,
    /// Memory misses answered from the persistent disk store.
    pub disk_hits: u64,
    /// Memory misses that fell through to an actual simulation (disk miss, disk
    /// layer disabled, or a corrupt entry).
    pub disk_misses: u64,
    /// Reports written through to the persistent store.
    pub disk_writes: u64,
    /// Disk entries that were present but corrupt/unreadable (each one degraded
    /// to a recompute and was rewritten). Stale entries from another simulator
    /// build or layout version count as plain disk misses, not errors.
    pub disk_read_errors: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries ({:.0}% hit rate); disk: {} hits, {} misses, \
             {} writes, {} read errors",
            self.hits,
            self.misses,
            self.entries,
            self.hit_rate() * 100.0,
            self.disk_hits,
            self.disk_misses,
            self.disk_writes,
            self.disk_read_errors,
        )
    }
}

/// One cache cell: empty while its first requester computes, then holds the result.
#[derive(Debug)]
struct Cell {
    slot: Mutex<Option<Result<RunReport, SuiteError>>>,
    ready: Condvar,
}

impl Cell {
    fn new() -> Self {
        Cell {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<RunReport, SuiteError> {
        let mut slot = self.slot.lock().expect("cache cell lock");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("cache cell wait");
        }
        slot.as_ref().expect("filled cell").clone()
    }

    fn fill(&self, value: Result<RunReport, SuiteError>) {
        *self.slot.lock().expect("cache cell lock") = Some(value);
        self.ready.notify_all();
    }
}

/// A thread-safe, in-memory map from [`ExperimentId`] to finished run reports,
/// optionally backed by a persistent [`DiskCache`].
#[derive(Debug, Default)]
pub struct ResultCache {
    cells: Mutex<HashMap<ExperimentId, Arc<Cell>>>,
    disk: Option<Arc<DiskCache>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_writes: AtomicU64,
    disk_read_errors: AtomicU64,
}

impl ResultCache {
    /// Creates an empty in-memory cache with no persistent backing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache backed by `disk` (when `Some`): memory misses
    /// consult the store before computing, and computed reports are written
    /// through.
    pub fn with_disk(disk: Option<Arc<DiskCache>>) -> Self {
        ResultCache {
            disk,
            ..Self::default()
        }
    }

    /// The persistent store backing this cache, when one is attached.
    pub fn disk(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Returns the cached result for `id`, computing it with `compute` on first
    /// request. Concurrent requests for the same id block until the first finishes
    /// and then share its result; they are counted as hits. `label` is the
    /// experiment's human-readable name, used to contextualise a contained panic.
    pub fn get_or_compute<F>(
        &self,
        id: ExperimentId,
        label: &str,
        compute: F,
    ) -> Result<RunReport, SuiteError>
    where
        F: FnOnce() -> Result<RunReport, SuiteError>,
    {
        let (cell, is_owner) = {
            let mut cells = self.cells.lock().expect("cache map lock");
            match cells.get(&id) {
                Some(cell) => (Arc::clone(cell), false),
                None => {
                    let cell = Arc::new(Cell::new());
                    cells.insert(id, Arc::clone(&cell));
                    (cell, true)
                }
            }
        };
        if is_owner {
            self.misses.fetch_add(1, Ordering::Relaxed);
            // Memory missed; the persistent layer answers next. A corrupt entry is
            // a silent miss (counted) — the recompute below rewrites it.
            if let Some(disk) = &self.disk {
                match disk.load(&id) {
                    DiskLookup::Hit(report) => {
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        let result = Ok(report);
                        cell.fill(result.clone());
                        return result;
                    }
                    DiskLookup::Miss => {}
                    DiskLookup::Corrupt => {
                        self.disk_read_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            self.disk_misses.fetch_add(1, Ordering::Relaxed);
            // Convert a panicking compute into an error so waiters are not stranded
            // on a cell that will never fill.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(compute))
                .unwrap_or_else(|payload| Err(SuiteError::panicked_experiment(label, payload)));
            // Write-through: only successful reports persist (errors and contained
            // panics are process-local), and a failed write never fails the run.
            if let (Some(disk), Ok(report)) = (&self.disk, &result) {
                if disk.store(&id, report).is_ok() {
                    self.disk_writes.fetch_add(1, Ordering::Relaxed);
                }
            }
            cell.fill(result.clone());
            result
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            cell.wait()
        }
    }

    /// Returns the finished result for `id` if it is already cached (does not count
    /// as a hit or miss, and does not block on in-flight cells).
    pub fn peek(&self, id: &ExperimentId) -> Option<Result<RunReport, SuiteError>> {
        let cell = {
            let cells = self.cells.lock().expect("cache map lock");
            Arc::clone(cells.get(id)?)
        };
        let slot = cell.slot.lock().expect("cache cell lock");
        slot.clone()
    }

    /// Current hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.cells.lock().expect("cache map lock").len(),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_read_errors: self.disk_read_errors.load(Ordering::Relaxed),
        }
    }

    /// Drops every *finished* in-memory entry and resets the counters (the
    /// persistent store, if any, is untouched — use
    /// [`DiskCache::clear`] for that). Cells whose first
    /// computation is still in flight are kept, so their owner fills a cell that
    /// waiters (current and future) still see — the compute-once guarantee survives
    /// a concurrent `clear`.
    pub fn clear(&self) {
        let mut cells = self.cells.lock().expect("cache map lock");
        cells.retain(|_, cell| cell.slot.lock().expect("cache cell lock").is_none());
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.disk_hits.store(0, Ordering::Relaxed);
        self.disk_misses.store(0, Ordering::Relaxed);
        self.disk_writes.store(0, Ordering::Relaxed);
        self.disk_read_errors.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SuiteOptions;
    use proxies::{InputSize, ProxyKind};
    use recovery::RecoveryStrategy;

    fn experiment() -> Experiment {
        Experiment::new(
            ProxyKind::Hpccg,
            InputSize::Small,
            4,
            RecoveryStrategy::Reinit,
        )
        .with_options(&SuiteOptions::smoke())
    }

    fn report(nprocs: usize) -> RunReport {
        RunReport {
            strategy: RecoveryStrategy::Reinit,
            nprocs,
            failure_injected: false,
            breakdown: mpisim::TimeBreakdown::new(),
            total_time: mpisim::SimTime::from_secs(1.0),
            stats: mpisim::RankStats::new(),
            restarts: 0,
            attempts: 1,
            failure_events: 0,
            attempt_log: Vec::new(),
        }
    }

    #[test]
    fn id_is_stable_and_distinguishes_every_field() {
        let base = experiment();
        assert_eq!(ExperimentId::of(&base), ExperimentId::of(&base.clone()));
        let mut other = base;
        other.seed ^= 1;
        assert_ne!(ExperimentId::of(&base), ExperimentId::of(&other));
        let mut other = base;
        other = other.with_failure(true);
        assert_ne!(ExperimentId::of(&base), ExperimentId::of(&other));
        let mtbf = base.with_scenario(crate::experiment::FailureScenario::Mtbf {
            node_mtbf_iterations: 500,
            node_crash_pct: 10,
            rack_neighbor_pct: 0,
            recovery_window_pct: 0,
        });
        assert_ne!(ExperimentId::of(&base), ExperimentId::of(&mtbf));
        let mtbf2 = base.with_scenario(crate::experiment::FailureScenario::Mtbf {
            node_mtbf_iterations: 250,
            node_crash_pct: 10,
            rack_neighbor_pct: 0,
            recovery_window_pct: 0,
        });
        assert_ne!(ExperimentId::of(&mtbf), ExperimentId::of(&mtbf2));
        let mut other = base;
        other.scale.linear_fraction += 0.001;
        assert_ne!(ExperimentId::of(&base), ExperimentId::of(&other));
        let mut other = base;
        other.nprocs += 1;
        assert_ne!(ExperimentId::of(&base), ExperimentId::of(&other));
        let mut other = base;
        other.strategy = RecoveryStrategy::Ulfm;
        assert_ne!(ExperimentId::of(&base), ExperimentId::of(&other));
    }

    #[test]
    fn repetition_floor_is_canonicalised() {
        // `run_experiment` treats 0 repetitions as 1, so the ids must collide.
        let mut zero = experiment();
        zero.repetitions = 0;
        let one = experiment().with_repetitions(1);
        assert_eq!(ExperimentId::of(&zero), ExperimentId::of(&one));
    }

    #[test]
    fn second_lookup_is_a_hit_and_skips_compute() {
        let cache = ResultCache::new();
        let id = ExperimentId::of(&experiment());
        let first = cache.get_or_compute(id, "t", || Ok(report(4))).unwrap();
        let second = cache
            .get_or_compute(id, "t", || panic!("must not recompute a cached cell"))
            .unwrap();
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn errors_are_cached_too() {
        let cache = ResultCache::new();
        let id = ExperimentId::of(&experiment());
        let err = SuiteError::RankFailures {
            label: "test".into(),
            errors: vec![(0, mpisim::MpiError::Revoked)],
        };
        let e = err.clone();
        assert!(cache.get_or_compute(id, "t", move || Err(e)).is_err());
        let again = cache.get_or_compute(id, "t", || panic!("must not recompute"));
        assert_eq!(again.unwrap_err(), err);
    }

    #[test]
    fn concurrent_requests_compute_once() {
        let cache = Arc::new(ResultCache::new());
        let id = ExperimentId::of(&experiment());
        let computations = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let computations = Arc::clone(&computations);
                scope.spawn(move || {
                    let r = cache.get_or_compute(id, "t", || {
                        computations.fetch_add(1, Ordering::Relaxed);
                        // Give the other threads time to pile onto the in-flight cell.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(report(4))
                    });
                    assert!(r.is_ok());
                });
            }
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ResultCache::new();
        let id = ExperimentId::of(&experiment());
        let _ = cache.get_or_compute(id, "t", || Ok(report(4)));
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.peek(&id).is_none());
    }

    #[test]
    fn clear_during_in_flight_compute_keeps_the_cell() {
        let cache = Arc::new(ResultCache::new());
        let id = ExperimentId::of(&experiment());
        let computations = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            let owner_cache = Arc::clone(&cache);
            let owner_count = Arc::clone(&computations);
            scope.spawn(move || {
                let _ = owner_cache.get_or_compute(id, "t", || {
                    owner_count.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    Ok(report(4))
                });
            });
            // Wait until the owner holds the cell, then clear: the pending cell must
            // survive so this request joins it instead of recomputing.
            while cache.stats().misses == 0 {
                std::thread::yield_now();
            }
            cache.clear();
            let joined =
                cache.get_or_compute(id, "t", || panic!("must not recompute an in-flight cell"));
            assert!(joined.is_ok());
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1);
    }
}
