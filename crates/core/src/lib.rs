//! # match_core — the MATCH benchmark suite
//!
//! This crate ties the substrates together into the benchmark suite the MATCH paper
//! describes: six proxy applications ([`match_proxies`](proxies)) instrumented with
//! FTI checkpointing ([`fti`]) and driven under three MPI fault-tolerance designs
//! ([`recovery`]) on a simulated cluster ([`mpisim`]), plus the experiment matrix,
//! figure generators and findings extraction of the paper's evaluation (Section V).
//!
//! The main entry points are:
//!
//! * [`Experiment`] / [`runner::run_experiment`] — run one workload under one design
//!   at one scale, with or without an injected process failure, averaged over
//!   repetitions, and get back a [`recovery::RunReport`] time breakdown;
//! * [`matrix`] — the paper's run matrices: the scaling sweep (Figs. 5–7) and the
//!   input-size sweep (Figs. 8–10);
//! * [`figures`] — regenerate each figure's data as printable tables;
//! * [`table1`] — reproduce Table I (the experimentation configuration);
//! * [`findings`] — the headline comparisons of Section V-C (Reinit vs. ULFM vs.
//!   Restart recovery ratios, checkpoint-time fraction).
//!
//! ```
//! use match_core::{Experiment, SuiteOptions};
//! use match_core::runner::run_experiment;
//! use proxies::{InputSize, ProxyKind};
//! use recovery::RecoveryStrategy;
//!
//! let options = SuiteOptions::smoke();
//! let experiment = Experiment::new(ProxyKind::Hpccg, InputSize::Small, 8, RecoveryStrategy::Reinit)
//!     .with_failure(true)
//!     .with_options(&options);
//! let report = run_experiment(&experiment);
//! assert!(report.recovery_time().as_secs() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod figures;
pub mod findings;
pub mod matrix;
pub mod runner;
pub mod table;
pub mod table1;

pub use experiment::{Experiment, SuiteOptions};
pub use figures::{FigureData, FigureRow};
pub use findings::Findings;

// Re-export the building blocks so downstream users (examples, benches) need only one
// dependency.
pub use fti;
pub use mpisim;
pub use proxies;
pub use recovery;
