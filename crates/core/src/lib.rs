//! # match_core — the MATCH benchmark suite
//!
//! This crate ties the substrates together into the benchmark suite the MATCH paper
//! describes: six proxy applications ([`match_proxies`](proxies)) instrumented with
//! FTI checkpointing ([`fti`]) and driven under the MPI fault-tolerance designs
//! ([`recovery`]) on a simulated cluster ([`mpisim`]) — the paper's three plus the
//! beyond-the-paper shrinking `SHRINK-FTI` (see [`designs`] for the registry every
//! figure enumerates) — plus the experiment matrix, figure generators and findings
//! extraction of the paper's evaluation (Section V).
//!
//! The main entry points are:
//!
//! * [`engine::SuiteEngine`] — the execution engine: runs experiments in parallel
//!   (bounded by the `MATCH_JOBS` environment variable), caches every result by
//!   content ([`cache::ExperimentId`]) both in memory and — across processes — in
//!   the persistent [`persist::DiskCache`], and reports failures as
//!   [`engine::SuiteError`] values instead of panicking;
//! * [`Experiment`] / [`runner::run_experiment`] — run one workload under one design
//!   at one scale, with or without an injected process failure, averaged over
//!   repetitions, and get back a [`recovery::RunReport`] time breakdown;
//! * [`matrix`] — the paper's run matrices: the scaling sweep (Figs. 5–7) and the
//!   input-size sweep (Figs. 8–10);
//! * [`figures`] — regenerate each figure's data as printable tables;
//! * [`table1`] — reproduce Table I (the experimentation configuration);
//! * [`findings`] — the headline comparisons of Section V-C (Reinit vs. ULFM vs.
//!   Restart recovery ratios, checkpoint-time fraction).
//!
//! ```
//! use match_core::{Experiment, SuiteEngine, SuiteOptions};
//! use proxies::{InputSize, ProxyKind};
//! use recovery::RecoveryStrategy;
//!
//! let options = SuiteOptions::smoke();
//! let experiment = Experiment::new(ProxyKind::Hpccg, InputSize::Small, 8, RecoveryStrategy::Reinit)
//!     .with_failure(true)
//!     .with_options(&options);
//! let engine = SuiteEngine::new();
//! let report = engine.run(&experiment).expect("experiment must recover");
//! assert!(report.recovery_time().as_secs() > 0.0);
//! // Asking again is answered from the engine's result cache.
//! assert_eq!(engine.run(&experiment).unwrap(), report);
//! assert_eq!(engine.cache_stats().hits, 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod designs;
pub mod engine;
pub mod experiment;
pub mod figures;
pub mod findings;
pub mod matrix;
pub mod mtbf;
pub mod persist;
pub mod runner;
pub mod table;
pub mod table1;

pub use cache::{CacheStats, ExperimentId};
pub use designs::{enabled_design_names, enabled_designs, SHRINK_ENV_VAR};
pub use engine::{core_budget, SuiteEngine, SuiteError, CORES_ENV_VAR, JOBS_ENV_VAR};
pub use experiment::{Experiment, FailureScenario, SuiteOptions};
pub use figures::{FigureData, FigureRow};
pub use findings::Findings;
pub use mtbf::{MtbfSweep, MtbfSweepOptions};
pub use persist::{DiskCache, CACHE_DIR_ENV_VAR, CACHE_ENV_VAR, CACHE_MAX_MB_ENV_VAR};
pub use runner::{run_trace, TraceRunOutcome, TraceRunSpec};

// Re-export the building blocks so downstream users (examples, benches) need only one
// dependency.
pub use fti;
pub use mpisim;
pub use proxies;
pub use recovery;
