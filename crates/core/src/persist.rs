//! Persistent, content-addressed storage for finished [`RunReport`]s.
//!
//! The in-memory [`ResultCache`](crate::cache::ResultCache) dies with the process,
//! so CLI reruns, CI determinism jobs and iterative figure work re-simulate cells
//! that were already computed bit-identically. This module spills the cache to disk
//! so a rerun is O(file read):
//!
//! * **Canonical serialization** — a versioned, checksummed binary encoding of
//!   [`RunReport`] (including the [`TimeBreakdown`] and the per-attempt log; every
//!   `f64` travels as its IEEE-754 bit pattern, so decode(encode(r)) == r *bitwise*).
//! * **Content addressing** — the [`ExperimentId`] is encoded field-by-field into an
//!   explicit little-endian byte string ([`ExperimentId::canonical_bytes`]) and fed
//!   through an in-tree FNV-1a-128 digest ([`fnv1a128`]). `std::hash::Hasher` is
//!   deliberately *not* used: its default state is not stable across releases or
//!   processes. The full id bytes are also stored in each entry's header and
//!   verified on read, so even a digest collision can only produce a miss, never a
//!   wrong report.
//! * **Crash safety** — writes go to a temp file in the destination directory,
//!   `fsync`, then atomic `rename`, so a concurrent or crashing process never
//!   observes a torn entry. Corrupt, truncated or version-mismatched files are a
//!   silent miss (the cell is recomputed and the entry rewritten), never a panic.
//! * **Staleness safety** — every entry records the [`source_fingerprint`] of the
//!   simulation stack it was produced by (a build-script hash over the sources of
//!   every crate that influences simulated results). An entry written by a
//!   different build of the simulator is treated as stale and recomputed, so a
//!   cache directory surviving a code change can never serve outdated numbers.
//!
//! Layout under the root (default `target/match-cache`, overridable via
//! [`CACHE_DIR_ENV_VAR`]): entries fan out over two directory levels keyed by the
//! leading hex digits of the content address, `root/ab/cd/<32-hex-digest>.rpt`,
//! keeping directories small even for hundred-thousand-entry caches. The
//! [`CACHE_MAX_MB_ENV_VAR`] cap enables mtime-LRU garbage collection (reads bump
//! the entry's mtime, best-effort), and [`CACHE_ENV_VAR`]`=off` disables the disk
//! layer entirely.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::SystemTime;

use fti::RestoreSource;
use mpisim::{RankStats, SimTime, TimeBreakdown};
use recovery::{AttemptEntry, AttemptSummary, CoveragePath, RecoveryStrategy, Restore, RunReport};

use crate::cache::ExperimentId;

/// Environment variable disabling the persistent cache when set to `off`, `0`,
/// `false` or `no` (case-insensitive).
pub const CACHE_ENV_VAR: &str = "MATCH_CACHE";

/// Environment variable overriding the persistent cache's root directory
/// (default: `target/match-cache` under the workspace root).
pub const CACHE_DIR_ENV_VAR: &str = "MATCH_CACHE_DIR";

/// Environment variable capping the persistent cache's size in mebibytes.
/// When set, writes trigger periodic mtime-LRU garbage collection down to the cap
/// (`match-bench cache gc` runs one on demand).
pub const CACHE_MAX_MB_ENV_VAR: &str = "MATCH_CACHE_MAX_MB";

/// Version of the on-disk entry layout. Bumping it silently invalidates every
/// existing entry (old files decode as a stale miss and are rewritten).
/// Version 2: the attempt log records the surviving world size (SHRINK-FTI).
/// Version 3: the attempt log records the recovery-path coverage signal
/// ([`CoveragePath`]) the fault-space explorer steers by.
pub const FORMAT_VERSION: u32 = 3;

/// Magic bytes opening every cache entry.
const MAGIC: [u8; 8] = *b"MATCHRC1";

/// File extension of finished entries; everything else in the tree is a temp file.
const ENTRY_EXT: &str = "rpt";

/// Run GC (when a cap is configured) every this many writes.
const GC_WRITE_PERIOD: u64 = 32;

/// Temp files older than this are leftovers of a crashed writer and are removed
/// by GC sweeps.
const STALE_TEMP_SECS: u64 = 3600;

/// The build-time fingerprint of every source file that influences simulated
/// results (see `crates/core/build.rs`). Entries produced by a different build of
/// the simulator are stale: bit-identical recall is only guaranteed within one
/// fingerprint.
pub fn source_fingerprint() -> u64 {
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        u64::from_str_radix(env!("MATCH_SOURCE_FINGERPRINT"), 16)
            .expect("build script emits a 16-digit hex fingerprint")
    })
}

/// Stable 64-bit FNV-1a over `bytes` (used for entry checksums).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Stable 128-bit FNV-1a over `bytes` (the content-address digest).
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    let mut hash: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    for &b in bytes {
        hash ^= b as u128;
        hash = hash.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013b);
    }
    hash
}

/// Little-endian byte-string encoder for the canonical formats of this module.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` always travels as 8 bytes so 32- and 64-bit builds agree.
    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Encodes the IEEE-754 bit pattern, preserving every f64 exactly.
    pub(crate) fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Why a cache entry failed to decode. Every variant degrades to a recompute;
/// none of them can panic a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The file ended before the encoding did.
    Truncated,
    /// The magic bytes are not a cache entry's.
    BadMagic,
    /// The entry was written under a different layout version.
    WrongVersion(u32),
    /// The entry was written by a different build of the simulator.
    StaleFingerprint,
    /// The checksum over the entry's bytes does not match.
    BadChecksum,
    /// The entry's stored id differs from the requested one (digest collision
    /// or a file renamed by hand).
    IdMismatch,
    /// A decoded value is outside its domain (e.g. a negative or non-finite
    /// virtual time, an unknown strategy tag).
    BadValue(&'static str),
    /// Bytes remained after the encoding ended.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "entry is truncated"),
            DecodeError::BadMagic => write!(f, "not a cache entry (bad magic)"),
            DecodeError::WrongVersion(v) => write!(f, "entry layout version {v} is not supported"),
            DecodeError::StaleFingerprint => {
                write!(f, "entry was written by a different simulator build")
            }
            DecodeError::BadChecksum => write!(f, "entry checksum mismatch"),
            DecodeError::IdMismatch => write!(f, "entry stores a different experiment id"),
            DecodeError::BadValue(what) => write!(f, "invalid {what}"),
            DecodeError::TrailingBytes => write!(f, "entry has trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// Whether this is an *expected* miss after an upgrade (layout or simulator
    /// changed) rather than on-disk corruption. Stale entries do not count as
    /// read errors in the cache statistics; corrupt ones do.
    pub fn is_stale(&self) -> bool {
        matches!(
            self,
            DecodeError::WrongVersion(_) | DecodeError::StaleFingerprint
        )
    }
}

/// Bounds-checked reader over an encoded byte string.
pub(crate) struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::BadValue("boolean")),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::BadValue("usize"))
    }

    pub(crate) fn f64_bits(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A virtual time: must be finite and non-negative ([`SimTime::from_secs`]
    /// panics otherwise, and a decoder must never panic).
    pub(crate) fn sim_time(&mut self) -> Result<SimTime, DecodeError> {
        let secs = self.f64_bits()?;
        if secs.is_finite() && secs >= 0.0 {
            Ok(SimTime::from_secs(secs))
        } else {
            Err(DecodeError::BadValue("virtual time"))
        }
    }

    pub(crate) fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

/// The content address of an experiment: the hex FNV-1a-128 digest of its
/// canonical byte encoding. This is the entry's file name stem.
pub fn content_address(id: &ExperimentId) -> String {
    format!("{:032x}", fnv1a128(&id.canonical_bytes()))
}

fn strategy_tag(strategy: RecoveryStrategy) -> u8 {
    match strategy {
        RecoveryStrategy::Restart => 0,
        RecoveryStrategy::Ulfm => 1,
        RecoveryStrategy::Reinit => 2,
        RecoveryStrategy::Shrink => 3,
    }
}

fn strategy_from_tag(tag: u8) -> Result<RecoveryStrategy, DecodeError> {
    match tag {
        0 => Ok(RecoveryStrategy::Restart),
        1 => Ok(RecoveryStrategy::Ulfm),
        2 => Ok(RecoveryStrategy::Reinit),
        3 => Ok(RecoveryStrategy::Shrink),
        _ => Err(DecodeError::BadValue("recovery strategy tag")),
    }
}

fn encode_breakdown(enc: &mut Enc, b: &TimeBreakdown) {
    enc.f64_bits(b.application.as_secs());
    enc.f64_bits(b.checkpoint_write.as_secs());
    enc.f64_bits(b.checkpoint_read.as_secs());
    enc.f64_bits(b.recovery.as_secs());
}

fn decode_breakdown(dec: &mut Dec<'_>) -> Result<TimeBreakdown, DecodeError> {
    Ok(TimeBreakdown {
        application: dec.sim_time()?,
        checkpoint_write: dec.sim_time()?,
        checkpoint_read: dec.sim_time()?,
        recovery: dec.sim_time()?,
    })
}

fn encode_stats(enc: &mut Enc, s: &RankStats) {
    enc.u64(s.sends);
    enc.u64(s.recvs);
    enc.u64(s.bytes_sent);
    enc.u64(s.bytes_received);
    enc.u64(s.collectives);
    enc.u64(s.checkpoints_written);
    enc.u64(s.checkpoint_bytes);
    enc.u64(s.recoveries);
    enc.u64(s.times_failed);
}

fn decode_stats(dec: &mut Dec<'_>) -> Result<RankStats, DecodeError> {
    Ok(RankStats {
        sends: dec.u64()?,
        recvs: dec.u64()?,
        bytes_sent: dec.u64()?,
        bytes_received: dec.u64()?,
        collectives: dec.u64()?,
        checkpoints_written: dec.u64()?,
        checkpoint_bytes: dec.u64()?,
        recoveries: dec.u64()?,
        times_failed: dec.u64()?,
    })
}

/// Restore-source tag of a [`CoveragePath`]: 0 = no restore, then the fallback
/// cascade order.
fn encode_path(enc: &mut Enc, path: &CoveragePath) {
    enc.u8(path.entry.index());
    match path.restore {
        None => {
            enc.u8(0);
            enc.u8(0);
            enc.u32(0);
        }
        Some(r) => {
            let (src, shards) = match r.source {
                RestoreSource::Primary => (1u8, 0u32),
                RestoreSource::Partner => (2, 0),
                RestoreSource::Decode { shards } => (3, shards as u32),
                RestoreSource::Pfs => (4, 0),
            };
            enc.u8(src);
            enc.u8(r.level);
            enc.u32(shards);
        }
    }
    enc.u32(path.erasures);
}

fn decode_path(dec: &mut Dec<'_>) -> Result<CoveragePath, DecodeError> {
    let entry =
        AttemptEntry::from_index(dec.u8()?).ok_or(DecodeError::BadValue("attempt entry tag"))?;
    let src = dec.u8()?;
    let level = dec.u8()?;
    let shards = dec.u32()? as usize;
    let restore = match src {
        0 => None,
        1 => Some(RestoreSource::Primary),
        2 => Some(RestoreSource::Partner),
        3 => Some(RestoreSource::Decode { shards }),
        4 => Some(RestoreSource::Pfs),
        _ => return Err(DecodeError::BadValue("restore source tag")),
    }
    .map(|source| Restore { level, source });
    if restore.is_some() && !(1..=4).contains(&level) {
        return Err(DecodeError::BadValue("restore checkpoint level"));
    }
    let erasures = dec.u32()?;
    Ok(CoveragePath {
        entry,
        restore,
        erasures,
    })
}

/// Serializes a report into the canonical body encoding (no header/checksum —
/// see [`encode_entry`] for the full file format).
pub fn encode_report(report: &RunReport) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u8(strategy_tag(report.strategy));
    enc.usize(report.nprocs);
    enc.bool(report.failure_injected);
    encode_breakdown(&mut enc, &report.breakdown);
    enc.f64_bits(report.total_time.as_secs());
    encode_stats(&mut enc, &report.stats);
    enc.u32(report.restarts);
    enc.u32(report.attempts);
    enc.u64(report.failure_events);
    enc.u32(report.attempt_log.len() as u32);
    for attempt in &report.attempt_log {
        enc.u32(attempt.attempt);
        enc.f64_bits(attempt.span_secs);
        enc.f64_bits(attempt.recovery_secs);
        enc.bool(attempt.completed);
        enc.usize(attempt.survivors);
        encode_path(&mut enc, &attempt.path);
    }
    enc.into_bytes()
}

fn decode_report_body(dec: &mut Dec<'_>) -> Result<RunReport, DecodeError> {
    let strategy = strategy_from_tag(dec.u8()?)?;
    let nprocs = dec.usize()?;
    let failure_injected = dec.bool()?;
    let breakdown = decode_breakdown(dec)?;
    let total_time = dec.sim_time()?;
    let stats = decode_stats(dec)?;
    let restarts = dec.u32()?;
    let attempts = dec.u32()?;
    let failure_events = dec.u64()?;
    let nattempts = dec.u32()?;
    // An attempt record is 40 bytes; reject counts the remaining bytes cannot
    // possibly satisfy before allocating.
    let mut attempt_log = Vec::with_capacity((nattempts as usize).min(4096));
    for _ in 0..nattempts {
        attempt_log.push(AttemptSummary {
            attempt: dec.u32()?,
            span_secs: dec.f64_bits()?,
            recovery_secs: dec.f64_bits()?,
            completed: dec.bool()?,
            survivors: dec.usize()?,
            path: decode_path(dec)?,
        });
    }
    Ok(RunReport {
        strategy,
        nprocs,
        failure_injected,
        breakdown,
        total_time,
        stats,
        restarts,
        attempts,
        failure_events,
        attempt_log,
    })
}

/// Deserializes a canonical body encoding (the inverse of [`encode_report`]).
pub fn decode_report(bytes: &[u8]) -> Result<RunReport, DecodeError> {
    let mut dec = Dec::new(bytes);
    let report = decode_report_body(&mut dec)?;
    dec.finish()?;
    Ok(report)
}

/// Serializes a full cache entry:
///
/// ```text
/// magic "MATCHRC1" | format version u32 | source fingerprint u64
/// | id length u32 | canonical id bytes | report body | FNV-1a-64 checksum u64
/// ```
///
/// The checksum covers every preceding byte; the id bytes make a digest
/// collision (or hand-renamed file) detectable on read.
pub fn encode_entry(id: &ExperimentId, report: &RunReport) -> Vec<u8> {
    let id_bytes = id.canonical_bytes();
    let mut enc = Enc::new();
    enc.bytes(&MAGIC);
    enc.u32(FORMAT_VERSION);
    enc.u64(source_fingerprint());
    enc.u32(id_bytes.len() as u32);
    enc.bytes(&id_bytes);
    enc.bytes(&encode_report(report));
    let mut bytes = enc.into_bytes();
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Deserializes and fully validates a cache entry for `id` (the inverse of
/// [`encode_entry`]). Every malformation is an `Err`, never a panic.
pub fn decode_entry(id: &ExperimentId, bytes: &[u8]) -> Result<RunReport, DecodeError> {
    // Checksum first: a torn or bit-rotted file must not be interpreted at all.
    if bytes.len() < MAGIC.len() + 8 {
        return Err(DecodeError::Truncated);
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    // Magic and version are checked before the checksum so a future layout
    // (which may checksum differently) reads as stale, not corrupt.
    let mut dec = Dec::new(payload);
    if dec.take(MAGIC.len())? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = dec.u32()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::WrongVersion(version));
    }
    if fnv1a64(payload) != stored {
        return Err(DecodeError::BadChecksum);
    }
    if dec.u64()? != source_fingerprint() {
        return Err(DecodeError::StaleFingerprint);
    }
    let id_len = dec.u32()? as usize;
    if dec.take(id_len)? != id.canonical_bytes() {
        return Err(DecodeError::IdMismatch);
    }
    let report = decode_report_body(&mut dec)?;
    dec.finish()?;
    Ok(report)
}

/// Outcome of a disk lookup (see [`DiskCache::load`]).
#[derive(Debug)]
pub enum DiskLookup {
    /// A valid entry was read back.
    Hit(RunReport),
    /// No entry exists (or the one found was stale after an upgrade).
    Miss,
    /// An entry exists but is corrupt or unreadable; the caller recomputes and
    /// the write-through replaces the bad file.
    Corrupt,
}

/// Entries and bytes currently stored under a cache root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskUsage {
    /// Number of finished entries.
    pub entries: u64,
    /// Total size of finished entries in bytes.
    pub bytes: u64,
}

/// What one garbage collection pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcOutcome {
    /// Entries evicted (oldest mtime first).
    pub evicted: u64,
    /// Bytes freed by the eviction.
    pub bytes_freed: u64,
    /// Usage remaining after the pass.
    pub remaining: DiskUsage,
}

#[derive(Debug)]
struct DiskEntry {
    path: PathBuf,
    len: u64,
    mtime: SystemTime,
}

/// The persistent content-addressed store under one root directory.
///
/// All operations are best-effort with respect to the filesystem: an unreadable
/// or unwritable cache degrades the engine to compute-only, it never fails a run.
/// Multiple processes may share one root concurrently — writes are atomic renames
/// of `fsync`ed temp files, and two processes racing on one entry write
/// bit-identical bytes anyway.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
    max_bytes: Option<u64>,
    writes: AtomicU64,
}

impl DiskCache {
    /// Opens (lazily — no I/O happens here) a store rooted at `root` with an
    /// optional size cap in bytes for write-triggered GC.
    pub fn new(root: impl Into<PathBuf>, max_bytes: Option<u64>) -> Self {
        DiskCache {
            root: root.into(),
            max_bytes,
            writes: AtomicU64::new(0),
        }
    }

    /// Builds the store the environment describes: `None` when
    /// [`CACHE_ENV_VAR`] disables it, otherwise rooted at [`CACHE_DIR_ENV_VAR`]
    /// (default `target/match-cache` under the workspace) with the
    /// [`CACHE_MAX_MB_ENV_VAR`] cap.
    pub fn from_env() -> Option<Arc<DiskCache>> {
        if matches!(
            std::env::var(CACHE_ENV_VAR).ok().as_deref().map(str::trim),
            Some(v) if v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false")
                || v.eq_ignore_ascii_case("no")
                || v == "0"
        ) {
            return None;
        }
        let root = std::env::var_os(CACHE_DIR_ENV_VAR)
            .map(PathBuf::from)
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(default_root);
        let max_bytes = std::env::var(CACHE_MAX_MB_ENV_VAR)
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .map(|mb| mb.saturating_mul(1024 * 1024));
        Some(Arc::new(DiskCache::new(root, max_bytes)))
    }

    /// The process-wide store described by the environment at first use
    /// (`None` when the disk layer is disabled). Shared by every
    /// [`SuiteEngine`](crate::engine::SuiteEngine) so concurrent engines
    /// write-through to one tree.
    pub fn global() -> Option<Arc<DiskCache>> {
        static GLOBAL: OnceLock<Option<Arc<DiskCache>>> = OnceLock::new();
        GLOBAL.get_or_init(DiskCache::from_env).clone()
    }

    /// The root directory of this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The GC size cap in bytes, when one is configured.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The path an entry for `id` lives at: two fan-out levels of the content
    /// address, then the full digest as the file name.
    pub fn path_of(&self, id: &ExperimentId) -> PathBuf {
        let address = content_address(id);
        self.root
            .join(&address[0..2])
            .join(&address[2..4])
            .join(format!("{address}.{ENTRY_EXT}"))
    }

    /// Looks `id` up on disk. Missing or stale entries are [`DiskLookup::Miss`];
    /// corrupt, truncated or unreadable ones are [`DiskLookup::Corrupt`]. A hit
    /// bumps the entry's mtime (best-effort) so mtime-LRU GC keeps hot entries.
    pub fn load(&self, id: &ExperimentId) -> DiskLookup {
        let path = self.path_of(id);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskLookup::Miss,
            Err(_) => return DiskLookup::Corrupt,
        };
        match decode_entry(id, &bytes) {
            Ok(report) => {
                touch(&path);
                DiskLookup::Hit(report)
            }
            Err(e) if e.is_stale() => DiskLookup::Miss,
            Err(_) => DiskLookup::Corrupt,
        }
    }

    /// Writes `report` as the entry for `id`: temp file in the destination
    /// directory, `fsync`, atomic rename. Readers either see the old complete
    /// entry (which is bit-identical anyway) or the new one, never a torn file.
    /// Triggers a GC pass periodically (every 32nd write) when a cap is set.
    pub fn store(&self, id: &ExperimentId, report: &RunReport) -> std::io::Result<()> {
        let path = self.path_of(id);
        let dir = path.parent().expect("entry path has a parent");
        fs::create_dir_all(dir)?;
        let bytes = encode_entry(id, report);

        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let temp = dir.join(format!(
            ".{}.{}.tmp",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let write = (|| {
            let mut file = fs::File::create(&temp)?;
            file.write_all(&bytes)?;
            // Durability point: after this fsync the rename publishes a complete
            // entry even if the process or host dies mid-way.
            file.sync_all()?;
            fs::rename(&temp, &path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&temp);
        }
        write?;
        // Make the rename itself durable (best-effort: not all filesystems
        // support fsync on directories).
        let _ = fs::File::open(dir).and_then(|d| d.sync_all());

        if let Some(max) = self.max_bytes {
            if self
                .writes
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(GC_WRITE_PERIOD)
            {
                let _ = self.gc(max);
            }
        }
        Ok(())
    }

    fn scan(&self) -> (Vec<DiskEntry>, Vec<PathBuf>) {
        let mut entries = Vec::new();
        let mut temps = Vec::new();
        let Ok(level1) = fs::read_dir(&self.root) else {
            return (entries, temps);
        };
        for l1 in level1.flatten().filter(|e| e.path().is_dir()) {
            let Ok(level2) = fs::read_dir(l1.path()) else {
                continue;
            };
            for l2 in level2.flatten().filter(|e| e.path().is_dir()) {
                let Ok(files) = fs::read_dir(l2.path()) else {
                    continue;
                };
                for file in files.flatten() {
                    let path = file.path();
                    let Ok(meta) = file.metadata() else {
                        continue;
                    };
                    if !meta.is_file() {
                        continue;
                    }
                    if path.extension().is_some_and(|e| e == ENTRY_EXT) {
                        entries.push(DiskEntry {
                            path,
                            len: meta.len(),
                            mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                        });
                    } else {
                        temps.push(path);
                    }
                }
            }
        }
        (entries, temps)
    }

    /// Entries and bytes currently stored.
    pub fn usage(&self) -> DiskUsage {
        let (entries, _) = self.scan();
        DiskUsage {
            entries: entries.len() as u64,
            bytes: entries.iter().map(|e| e.len).sum(),
        }
    }

    /// Evicts least-recently-used entries (oldest mtime first; reads refresh the
    /// mtime) until the store fits in `max_bytes`, and sweeps temp files left by
    /// crashed writers. Concurrent readers of an evicted entry simply miss.
    pub fn gc(&self, max_bytes: u64) -> GcOutcome {
        let (mut entries, temps) = self.scan();
        for temp in temps {
            let old = fs::metadata(&temp)
                .and_then(|m| m.modified())
                .map(|t| {
                    t.elapsed()
                        .map(|age| age.as_secs() >= STALE_TEMP_SECS)
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            if old {
                let _ = fs::remove_file(&temp);
            }
        }
        let mut total: u64 = entries.iter().map(|e| e.len).sum();
        // Oldest first; ties broken by path so concurrent GC passes agree.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let mut outcome = GcOutcome::default();
        let mut kept = entries.len() as u64;
        for entry in &entries {
            if total <= max_bytes {
                break;
            }
            if fs::remove_file(&entry.path).is_ok() {
                total -= entry.len;
                kept -= 1;
                outcome.evicted += 1;
                outcome.bytes_freed += entry.len;
            }
        }
        outcome.remaining = DiskUsage {
            entries: kept,
            bytes: total,
        };
        outcome
    }

    /// Removes every entry and temp file (the fan-out directories stay). Returns
    /// the number of entries removed.
    pub fn clear(&self) -> u64 {
        let (entries, temps) = self.scan();
        let mut removed = 0;
        for entry in entries {
            if fs::remove_file(&entry.path).is_ok() {
                removed += 1;
            }
        }
        for temp in temps {
            let _ = fs::remove_file(&temp);
        }
        removed
    }
}

/// Best-effort mtime bump so reads count as "recently used" for the LRU sweep.
fn touch(path: &Path) {
    if let Ok(file) = fs::File::options().append(true).open(path) {
        let _ = file.set_modified(SystemTime::now());
    }
}

/// `target/match-cache` under the workspace this binary was compiled from. The
/// compile-time path keeps the cache in one place no matter which crate's test
/// binary (each with its own working directory) opens it.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/core has a workspace root two levels up")
        .join("target")
        .join("match-cache")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, SuiteOptions};
    use proxies::{InputSize, ProxyKind};

    fn test_id(seed: u64) -> ExperimentId {
        let mut e = Experiment::new(
            ProxyKind::Hpccg,
            InputSize::Small,
            4,
            RecoveryStrategy::Reinit,
        )
        .with_options(&SuiteOptions::smoke());
        e.seed = seed;
        ExperimentId::of(&e)
    }

    fn test_report() -> RunReport {
        RunReport {
            strategy: RecoveryStrategy::Ulfm,
            nprocs: 8,
            failure_injected: true,
            breakdown: TimeBreakdown {
                application: SimTime::from_secs(10.25),
                checkpoint_write: SimTime::from_secs(1.5),
                checkpoint_read: SimTime::from_secs(0.125),
                recovery: SimTime::from_secs(0.75),
            },
            total_time: SimTime::from_secs(12.625),
            stats: RankStats {
                sends: 1,
                recvs: 2,
                bytes_sent: 3,
                bytes_received: 4,
                collectives: 5,
                checkpoints_written: 6,
                checkpoint_bytes: 7,
                recoveries: 8,
                times_failed: 9,
            },
            restarts: 2,
            attempts: 3,
            failure_events: 4,
            attempt_log: vec![
                AttemptSummary {
                    attempt: 1,
                    span_secs: 3.125,
                    recovery_secs: 0.5,
                    completed: false,
                    survivors: 8,
                    path: CoveragePath::fresh(),
                },
                AttemptSummary {
                    attempt: 2,
                    span_secs: 9.5,
                    recovery_secs: 0.0,
                    completed: true,
                    survivors: 7,
                    path: CoveragePath {
                        entry: AttemptEntry::Respawn,
                        restore: Some(Restore {
                            level: 3,
                            source: RestoreSource::Decode { shards: 5 },
                        }),
                        erasures: 2,
                    },
                },
            ],
        }
    }

    #[test]
    fn fnv_digests_match_the_published_vectors() {
        // FNV-1a of the empty string is the offset basis — the classic vector
        // proving the constants (and thus file compatibility) never drift.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        // "a" exercises one multiply round of each width.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a128(b"a"), fnv1a128(b"b"));
    }

    #[test]
    fn entry_roundtrip_is_bit_identical() {
        let id = test_id(7);
        let report = test_report();
        let bytes = encode_entry(&id, &report);
        let back = decode_entry(&id, &bytes).expect("roundtrip");
        assert_eq!(back, report);
        // Body-only roundtrip too.
        assert_eq!(decode_report(&encode_report(&report)).unwrap(), report);
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let id = test_id(7);
        let bytes = encode_entry(&id, &test_report());
        for len in 0..bytes.len() {
            assert!(
                decode_entry(&id, &bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let id = test_id(7);
        let bytes = encode_entry(&id, &test_report());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                decode_entry(&id, &corrupt).is_err(),
                "flip at byte {i} decoded"
            );
        }
    }

    #[test]
    fn version_and_fingerprint_mismatches_read_as_stale() {
        let id = test_id(7);
        let mut bytes = encode_entry(&id, &test_report());
        bytes[8] ^= 1; // the layout version, right after the magic
        let err = decode_entry(&id, &bytes).unwrap_err();
        assert!(matches!(err, DecodeError::WrongVersion(_)), "{err:?}");
        assert!(err.is_stale());
        // A fingerprint flip is stale too — but the checksum must be fixed up,
        // otherwise the corruption is (correctly) reported first.
        let mut bytes = encode_entry(&id, &test_report());
        bytes[12] ^= 1;
        let fixed = fnv1a64(&bytes[..bytes.len() - 8]).to_le_bytes();
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&fixed);
        let err = decode_entry(&id, &bytes).unwrap_err();
        assert_eq!(err, DecodeError::StaleFingerprint);
        assert!(err.is_stale());
        assert!(!DecodeError::BadChecksum.is_stale());
    }

    #[test]
    fn entry_for_one_id_never_decodes_for_another() {
        let bytes = encode_entry(&test_id(1), &test_report());
        assert_eq!(
            decode_entry(&test_id(2), &bytes).unwrap_err(),
            DecodeError::IdMismatch
        );
    }

    #[test]
    fn nan_attempt_spans_roundtrip_by_bits() {
        // Plain f64 fields carry whatever bits they had; only virtual times are
        // domain-checked.
        let mut report = test_report();
        report.attempt_log[0].span_secs = f64::from_bits(0x7ff8_dead_beef_0001);
        let back = decode_report(&encode_report(&report)).unwrap();
        assert_eq!(
            back.attempt_log[0].span_secs.to_bits(),
            report.attempt_log[0].span_secs.to_bits()
        );
    }

    #[test]
    fn negative_virtual_time_is_rejected_not_panicking() {
        let report = test_report();
        let mut body = encode_report(&report);
        // The first breakdown field starts after strategy(1) + nprocs(8) + bool(1).
        body[10..18].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert_eq!(
            decode_report(&body).unwrap_err(),
            DecodeError::BadValue("virtual time")
        );
    }

    #[test]
    fn content_addresses_are_stable_and_distinct() {
        let a = content_address(&test_id(1));
        assert_eq!(a, content_address(&test_id(1)));
        assert_ne!(a, content_address(&test_id(2)));
        assert_eq!(a.len(), 32);
        assert!(a.bytes().all(|b| b.is_ascii_hexdigit()));
    }

    #[test]
    fn store_load_roundtrip_and_layout() {
        let dir = std::env::temp_dir().join(format!("match-persist-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = DiskCache::new(&dir, None);
        let id = test_id(42);
        let report = test_report();
        assert!(matches!(cache.load(&id), DiskLookup::Miss));
        cache.store(&id, &report).expect("store");
        let path = cache.path_of(&id);
        assert!(path.exists());
        // Two-level fan-out: root/ab/cd/<digest>.rpt
        let address = content_address(&id);
        assert!(path.ends_with(
            Path::new(&address[0..2])
                .join(&address[2..4])
                .join(format!("{address}.rpt"))
        ));
        match cache.load(&id) {
            DiskLookup::Hit(back) => assert_eq!(back, report),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(cache.usage().entries, 1);
        assert_eq!(cache.clear(), 1);
        assert_eq!(cache.usage(), DiskUsage::default());
        let _ = fs::remove_dir_all(&dir);
    }
}
