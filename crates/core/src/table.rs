//! Plain-text table rendering used by the figure and table generators.

/// A simple left-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of columns than the header.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a time in seconds with three decimal places.
pub fn secs(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["app", "time"]);
        t.add_row(vec!["HPCCG", "1.0"]);
        t.add_row(vec!["miniVite", "12.5"]);
        let text = t.render();
        assert!(text.contains("app"));
        assert!(text.contains("miniVite"));
        assert_eq!(t.row_count(), 2);
        // Header and separator plus two rows.
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only one"]);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(secs(0.0), "0.000");
    }
}
