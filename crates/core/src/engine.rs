//! The suite execution engine: parallel, cached, fallible experiment execution.
//!
//! [`SuiteEngine`] owns the execution of experiment matrices end-to-end and is the
//! single path every consumer (figures, findings, the `match-bench` CLI, the bench
//! harnesses and the examples) goes through:
//!
//! * **caching** — every run is keyed by its canonical
//!   [`ExperimentId`] in a thread-safe
//!   [`ResultCache`], so overlapping matrices (Fig. 6 and
//!   Fig. 7 share every cell; the findings re-derive from the Fig. 6 matrix) never
//!   simulate the same cell twice in one process; unless `MATCH_CACHE=off`, the
//!   cache is also backed by the persistent content-addressed [`DiskCache`], so
//!   *fresh processes* recall earlier results from disk instead of re-simulating
//!   — a warm figure rerun performs zero simulations;
//! * **parallelism** — independent experiments of a matrix run concurrently on a
//!   work-stealing pool of `std` threads bounded by [`SuiteEngine::jobs`] (the
//!   `MATCH_JOBS` environment variable, defaulting to the host's available
//!   parallelism). The engine's core budget (`MATCH_CORES`, defaulting to the host's
//!   available parallelism) is divided between concurrent experiments and the
//!   per-experiment scheduler: an engine with `j` jobs publishes
//!   `max(1, cores / j)` as the default worker count of the `par` rank scheduler
//!   (overridable via `MATCH_WORKERS`), so `jobs × workers` never oversubscribes
//!   the budget;
//! * **fallibility** — a failed rank no longer panics the process: runs return
//!   `Result<RunReport, `[`SuiteError`]`>` carrying the experiment label and the
//!   per-rank errors, and matrix runs surface the first failing cell.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use mpisim::MpiError;
use recovery::RunReport;

use crate::cache::{CacheStats, ExperimentId, ResultCache};
use crate::experiment::Experiment;
use crate::persist::DiskCache;
use crate::runner;

/// Environment variable bounding the number of experiments run concurrently.
pub const JOBS_ENV_VAR: &str = "MATCH_JOBS";

/// Environment variable bounding the engine's total core budget: the product of
/// concurrent experiments (`MATCH_JOBS`) and per-experiment `par` scheduler workers
/// stays within this many cores. Defaults to the host's available parallelism.
pub const CORES_ENV_VAR: &str = "MATCH_CORES";

/// An experiment (or the engine running it) failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SuiteError {
    /// One or more ranks of the experiment reported an error the fault-tolerance
    /// design did not recover from.
    RankFailures {
        /// The experiment's human-readable label ("HPCCG/Small/8/REINIT-FTI/fault").
        label: String,
        /// The failing ranks and the errors they reported, ordered by rank.
        errors: Vec<(usize, MpiError)>,
    },
    /// The computation panicked; the panic was contained by the engine.
    Panicked {
        /// What was being computed and what the panic said.
        context: String,
    },
}

impl SuiteError {
    /// Builds the error for a run whose outcome contains failing ranks.
    pub fn from_outcome<R>(label: String, outcome: &mpisim::RunOutcome<R>) -> Self {
        let errors = outcome
            .ranks()
            .iter()
            .filter_map(|r| r.result.as_ref().err().map(|e| (r.rank, e.clone())))
            .collect();
        SuiteError::RankFailures { label, errors }
    }

    /// The label of the experiment that failed, when one is known.
    pub fn label(&self) -> Option<&str> {
        match self {
            SuiteError::RankFailures { label, .. } => Some(label),
            SuiteError::Panicked { .. } => None,
        }
    }

    /// The per-rank errors, when the failure came from ranks.
    pub fn rank_errors(&self) -> &[(usize, MpiError)] {
        match self {
            SuiteError::RankFailures { errors, .. } => errors,
            SuiteError::Panicked { .. } => &[],
        }
    }

    pub(crate) fn panicked_experiment(label: &str, payload: Box<dyn std::any::Any + Send>) -> Self {
        SuiteError::Panicked {
            context: format!("{label}: {}", panic_message(payload)),
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::RankFailures { label, errors } => {
                write!(f, "experiment {label} failed on {} rank(s):", errors.len())?;
                for (rank, error) in errors {
                    write!(f, " [rank {rank}: {error}]")?;
                }
                Ok(())
            }
            SuiteError::Panicked { context } => write!(f, "experiment panicked: {context}"),
        }
    }
}

impl std::error::Error for SuiteError {}

/// The parallel, cached experiment executor (see the module docs).
#[derive(Debug)]
pub struct SuiteEngine {
    jobs: usize,
    workers_per_job: usize,
    cache: ResultCache,
}

impl Default for SuiteEngine {
    /// Same as [`SuiteEngine::new`].
    fn default() -> Self {
        Self::new()
    }
}

impl SuiteEngine {
    /// Creates an engine with the default concurrency: the `MATCH_JOBS` environment
    /// variable if set to a positive integer, otherwise the host's available
    /// parallelism.
    pub fn new() -> Self {
        Self::with_jobs(default_jobs())
    }

    /// Creates an engine running at most `jobs` experiments concurrently (`0` is
    /// treated as `1`), backed by the process-wide persistent result store the
    /// environment describes (see [`DiskCache::global`]; `MATCH_CACHE=off`
    /// disables it).
    ///
    /// The core budget ([`core_budget`], i.e. `MATCH_CORES` or the host's available
    /// parallelism) left over after dividing by `jobs` — at least 1 — is published
    /// as the default worker count of the `par` rank scheduler, so experiments
    /// running concurrently under this engine do not oversubscribe the host. An
    /// explicit `MATCH_WORKERS` still takes precedence over this default.
    pub fn with_jobs(jobs: usize) -> Self {
        Self::with_jobs_and_disk(jobs, DiskCache::global())
    }

    /// Creates an engine like [`SuiteEngine::with_jobs`] but with an explicit
    /// persistent store (or none), instead of the environment-described one.
    /// Lookups go memory → disk → compute with write-through; several engines
    /// sharing one store recall each other's results across processes.
    pub fn with_jobs_and_disk(jobs: usize, disk: Option<Arc<DiskCache>>) -> Self {
        let jobs = jobs.max(1);
        let workers_per_job = (core_budget() / jobs).max(1);
        mpisim::set_default_par_workers(workers_per_job);
        SuiteEngine {
            jobs,
            workers_per_job,
            cache: ResultCache::with_disk(disk),
        }
    }

    /// Creates a strictly serial engine (equivalent to `MATCH_JOBS=1`).
    pub fn serial() -> Self {
        Self::with_jobs(1)
    }

    /// The process-wide shared engine. All convenience entry points
    /// ([`runner::run_experiment`], the figure generators) go through this instance,
    /// so results are shared across figure targets within one process.
    pub fn global() -> &'static SuiteEngine {
        static GLOBAL: OnceLock<SuiteEngine> = OnceLock::new();
        GLOBAL.get_or_init(SuiteEngine::new)
    }

    /// The maximum number of experiments this engine runs concurrently.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The `par` scheduler worker count this engine published as the per-experiment
    /// default: `max(1, core_budget / jobs)`.
    pub fn workers_per_job(&self) -> usize {
        self.workers_per_job
    }

    /// Runs (or recalls) one experiment. Panics inside the computation are contained
    /// by the cache's single backstop, labelled with the experiment's readable name.
    pub fn run(&self, experiment: &Experiment) -> Result<RunReport, SuiteError> {
        self.cache
            .get_or_compute(ExperimentId::of(experiment), &experiment.label(), || {
                runner::run_experiment_uncached(experiment)
            })
    }

    /// Runs a whole matrix: unique cells are scheduled across the worker pool (every
    /// already-cached cell is recalled instead), then the reports are returned in the
    /// input's order — duplicates included. The first failing cell (in input order)
    /// is returned as the error. Scheduling stops early once any cell fails:
    /// in-flight cells finish, unstarted ones are never launched.
    pub fn run_matrix(&self, experiments: &[Experiment]) -> Result<Vec<RunReport>, SuiteError> {
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<&Experiment> = experiments
            .iter()
            .filter(|e| seen.insert(ExperimentId::of(e)))
            .collect();

        let failed = AtomicBool::new(false);
        let workers = self.jobs.min(unique.len());
        if workers > 1 {
            let cursor = AtomicUsize::new(0);
            let unique = &unique;
            let failed = &failed;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        if failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(experiment) = unique.get(i) else {
                            break;
                        };
                        // Errors are cached; they surface during collection below.
                        if self.run(experiment).is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                    });
                }
            });
        } else {
            for experiment in &unique {
                if self.run(experiment).is_err() {
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            }
        }

        if failed.load(Ordering::Relaxed) {
            // Surface the first failing cell in input order; cells that were never
            // scheduled because of the abort must not be recomputed here.
            for e in experiments {
                if let Some(Err(error)) = self.cache.peek(&ExperimentId::of(e)) {
                    return Err(error);
                }
            }
        }

        experiments
            .iter()
            .map(|e| {
                self.cache
                    .peek(&ExperimentId::of(e))
                    .unwrap_or_else(|| self.run(e))
            })
            .collect()
    }

    /// Runs the same workload under every design of the registry, in
    /// [`crate::designs::enabled_designs`] order (Restart, Ulfm, Reinit, then
    /// Shrink unless `MATCH_SHRINK=0`).
    pub fn run_all_designs(&self, base: &Experiment) -> Result<Vec<RunReport>, SuiteError> {
        let experiments: Vec<Experiment> = crate::designs::enabled_designs()
            .iter()
            .map(|&strategy| {
                let mut e = *base;
                e.strategy = strategy;
                e
            })
            .collect();
        self.run_matrix(&experiments)
    }

    /// Hit/miss counters of the engine's cache. Counters track *scheduled* cells: a
    /// matrix row recalled during result collection does not bump them. The
    /// `disk_misses` counter is the number of cells this engine actually
    /// simulated — zero on a fully warm-started run.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The persistent result store backing this engine's cache, when one is
    /// attached (`MATCH_CACHE=off` and [`SuiteEngine::with_jobs_and_disk`] with
    /// `None` detach it).
    pub fn disk_cache(&self) -> Option<&Arc<DiskCache>> {
        self.cache.disk()
    }

    /// Drops every cached in-memory result (mainly for tests that measure
    /// cold-cache work). The persistent store is untouched.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }
}

/// `MATCH_JOBS` if set and positive, otherwise the full core budget.
fn default_jobs() -> usize {
    positive_env(JOBS_ENV_VAR).unwrap_or_else(core_budget)
}

/// The engine's total core budget: `MATCH_CORES` if set and positive, otherwise the
/// host's available parallelism (1 when that cannot be determined).
pub fn core_budget() -> usize {
    positive_env(CORES_ENV_VAR).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

fn positive_env(var: &str) -> Option<usize> {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SuiteOptions;
    use proxies::{InputSize, ProxyKind};
    use recovery::RecoveryStrategy;

    fn smoke(strategy: RecoveryStrategy, inject: bool) -> Experiment {
        Experiment::new(ProxyKind::Hpccg, InputSize::Small, 4, strategy)
            .with_options(&SuiteOptions::smoke())
            .with_failure(inject)
    }

    #[test]
    fn run_caches_the_second_lookup() {
        let engine = SuiteEngine::serial();
        let first = engine.run(&smoke(RecoveryStrategy::Reinit, false)).unwrap();
        let second = engine.run(&smoke(RecoveryStrategy::Reinit, false)).unwrap();
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn matrix_dedups_overlapping_cells() {
        let engine = SuiteEngine::with_jobs(2);
        let e = smoke(RecoveryStrategy::Reinit, true);
        let matrix = vec![e, smoke(RecoveryStrategy::Ulfm, true), e];
        let reports = engine.run_matrix(&matrix).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports[0], reports[2],
            "duplicate rows share one computed report"
        );
        assert_eq!(
            engine.cache_stats().misses,
            2,
            "only two unique cells computed"
        );
    }

    #[test]
    fn parallel_and_serial_engines_agree() {
        // Failure-free runs are bit-deterministic, so the comparison can be exact.
        let experiments: Vec<Experiment> = RecoveryStrategy::ALL
            .iter()
            .map(|&s| smoke(s, false))
            .collect();
        let serial = SuiteEngine::serial().run_matrix(&experiments).unwrap();
        let parallel = SuiteEngine::with_jobs(8).run_matrix(&experiments).unwrap();
        assert_eq!(
            serial, parallel,
            "virtual time must not depend on engine scheduling"
        );
    }

    #[test]
    fn run_all_designs_orders_like_the_design_registry() {
        let engine = SuiteEngine::serial();
        let reports = engine
            .run_all_designs(&smoke(RecoveryStrategy::Restart, true))
            .unwrap();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].strategy, RecoveryStrategy::Restart);
        assert_eq!(reports[1].strategy, RecoveryStrategy::Ulfm);
        assert_eq!(reports[2].strategy, RecoveryStrategy::Reinit);
        assert_eq!(reports[3].strategy, RecoveryStrategy::Shrink);
        assert!(reports[2].recovery_time() < reports[1].recovery_time());
        assert!(reports[1].recovery_time() < reports[0].recovery_time());
        // The shrinking design pays a real recovery (revoke + shrink + agree plus
        // the data redistribution) but never a job relaunch.
        assert!(reports[3].recovery_time().as_secs() > 0.0);
        assert!(reports[3].recovery_time() < reports[0].recovery_time());
    }

    #[test]
    fn jobs_floor_is_one() {
        assert_eq!(SuiteEngine::with_jobs(0).jobs(), 1);
        assert!(SuiteEngine::new().jobs() >= 1);
        assert_eq!(SuiteEngine::global().jobs(), SuiteEngine::global().jobs());
    }

    #[test]
    fn core_budget_is_split_between_jobs_and_workers() {
        let budget = core_budget();
        assert!(budget >= 1);
        for jobs in [1, 2, 3, 8, budget, budget * 4] {
            let engine = SuiteEngine::with_jobs(jobs);
            assert_eq!(engine.workers_per_job(), (budget / jobs).max(1));
            if jobs <= budget {
                assert!(
                    engine.jobs() * engine.workers_per_job() <= budget,
                    "{jobs} jobs × {} workers oversubscribes a budget of {budget}",
                    engine.workers_per_job()
                );
            } else {
                // More jobs than cores: each job still gets the floor of one worker.
                assert_eq!(engine.workers_per_job(), 1);
            }
        }
    }

    #[test]
    fn workers_per_job_floor_is_one() {
        assert_eq!(SuiteEngine::with_jobs(usize::MAX / 2).workers_per_job(), 1);
        assert!(SuiteEngine::serial().workers_per_job() >= 1);
    }

    #[test]
    fn matrix_aborts_early_on_failure() {
        let engine = SuiteEngine::serial();
        let bad = Experiment::new(
            ProxyKind::Hpccg,
            InputSize::Small,
            0,
            RecoveryStrategy::Reinit,
        )
        .with_options(&SuiteOptions::smoke());
        let good = smoke(RecoveryStrategy::Reinit, false);
        let error = engine.run_matrix(&[bad, good]).unwrap_err();
        assert!(error.to_string().contains("HPCCG/Small/0"), "{error}");
        // The failing first cell aborted scheduling: the good cell never ran.
        assert_eq!(engine.cache_stats().entries, 1);
    }

    #[test]
    fn panics_surface_with_the_experiment_label() {
        // Zero ranks trips the cluster constructor's assertion; the engine must
        // contain the panic and name the cell by its human-readable label.
        let bad = Experiment::new(
            ProxyKind::Hpccg,
            InputSize::Small,
            0,
            RecoveryStrategy::Reinit,
        )
        .with_options(&SuiteOptions::smoke());
        let engine = SuiteEngine::serial();
        let error = engine.run(&bad).unwrap_err();
        assert!(
            error.to_string().contains("HPCCG/Small/0/REINIT-FTI"),
            "panic context must carry the label: {error}"
        );
    }

    #[test]
    fn suite_error_renders_label_and_ranks() {
        let err = SuiteError::RankFailures {
            label: "HPCCG/Small/4/REINIT-FTI".into(),
            errors: vec![(2, MpiError::Revoked)],
        };
        let text = err.to_string();
        assert!(text.contains("HPCCG/Small/4/REINIT-FTI"));
        assert!(text.contains("rank 2"));
        assert_eq!(err.label(), Some("HPCCG/Small/4/REINIT-FTI"));
        assert_eq!(err.rank_errors().len(), 1);
        let panicked = SuiteError::Panicked {
            context: "boom".into(),
        };
        assert!(panicked.to_string().contains("boom"));
        assert!(panicked.label().is_none());
        assert!(panicked.rank_errors().is_empty());
    }
}
