//! The design registry: the single enumeration of the fault-tolerance design axis.
//!
//! Every consumer that sweeps "all designs" — the experiment matrices
//! ([`crate::matrix`]), the figure generators ([`crate::figures`]), the MTBF sweep
//! ([`crate::mtbf`]), [`crate::engine::SuiteEngine::run_all_designs`] and the
//! findings ([`crate::findings`]) — enumerates the axis through
//! [`enabled_designs`]. A design added to [`recovery::RecoveryStrategy::ALL`] then
//! shows up in every figure at once, and a figure can never silently drop one: the
//! registry tests (and the coverage test in [`crate::figures`]) compare figure rows
//! against this list.
//!
//! The beyond-the-paper `SHRINK-FTI` design is part of the axis by default.
//! Setting the `MATCH_SHRINK` environment variable to `0`/`off` restricts the
//! suite to the paper's original three designs
//! ([`recovery::RecoveryStrategy::PAPER`]), reproducing the published figures
//! verbatim. Any other value (or no value) keeps all four designs. The choice does
//! not enter the cache key: disabling a design only stops scheduling it, and the
//! per-design results that do run are bit-identical either way.

use recovery::RecoveryStrategy;

/// Environment variable selecting the design axis: `0`/`off` restricts the suite
/// to the paper's three designs, anything else (including unset) enables the
/// fourth, shrinking design `SHRINK-FTI` as well.
pub const SHRINK_ENV_VAR: &str = "MATCH_SHRINK";

/// The designs the suite currently sweeps, in figure order (the paper's three
/// first, `SHRINK-FTI` last when enabled). Honours [`SHRINK_ENV_VAR`].
pub fn enabled_designs() -> &'static [RecoveryStrategy] {
    match std::env::var(SHRINK_ENV_VAR) {
        Ok(value) if disables_shrink(&value) => &RecoveryStrategy::PAPER,
        _ => &RecoveryStrategy::ALL,
    }
}

/// The figure names of the enabled designs (`"RESTART-FTI"`, ...), in the same
/// order as [`enabled_designs`].
pub fn enabled_design_names() -> Vec<&'static str> {
    enabled_designs().iter().map(|s| s.design_name()).collect()
}

/// Whether a `MATCH_SHRINK` value turns the shrinking design off.
fn disables_shrink(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "0" | "off" | "false" | "no"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_axis_is_all_four_designs_with_shrink_last() {
        // The test environment does not set MATCH_SHRINK, so the registry exposes
        // the full axis: the paper's prefix untouched, the shrinking design last
        // (figure ordering of the first three bars never changes).
        let designs = enabled_designs();
        assert_eq!(designs.len(), 4);
        assert_eq!(designs[..3], RecoveryStrategy::PAPER);
        assert_eq!(designs[3], RecoveryStrategy::Shrink);
        assert_eq!(
            enabled_design_names(),
            vec!["RESTART-FTI", "ULFM-FTI", "REINIT-FTI", "SHRINK-FTI"]
        );
    }

    #[test]
    fn off_values_restrict_to_the_paper_axis() {
        for off in ["0", "off", "OFF", " Off ", "false", "no"] {
            assert!(disables_shrink(off), "{off:?} must disable SHRINK-FTI");
        }
        for on in ["1", "on", "", "yes", "shrink"] {
            assert!(!disables_shrink(on), "{on:?} must keep SHRINK-FTI enabled");
        }
    }

    #[test]
    fn every_enabled_design_has_a_distinct_name_and_protocol() {
        // The registry is the single enumeration the figures trust; duplicate or
        // colliding names would silently merge bars.
        let names = enabled_design_names();
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        // Exactly one design shrinks the world.
        assert_eq!(
            enabled_designs()
                .iter()
                .filter(|s| s.shrinks_world())
                .count(),
            1
        );
    }
}
