//! Table I: the experimentation configuration for the proxy applications.

use proxies::{InputSize, ProxyKind};

use crate::table::TextTable;

/// Builds the paper's Table I: one row per application with its small / medium /
/// large input arguments and the process counts it runs on.
pub fn table1() -> TextTable {
    let mut table = TextTable::new(vec![
        "Application",
        "Small Input",
        "Medium Input",
        "Large Input",
        "Number of processes",
    ]);
    for kind in ProxyKind::ALL {
        let procs = kind
            .process_counts()
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        table.add_row(vec![
            kind.name().to_string(),
            kind.table1_args(InputSize::Small).to_string(),
            kind.table1_args(InputSize::Medium).to_string(),
            kind.table1_args(InputSize::Large).to_string(),
            procs,
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows_and_matches_the_paper() {
        let t = table1();
        assert_eq!(t.row_count(), 6);
        let text = t.render();
        assert!(text.contains("AMG"));
        assert!(text.contains("-problem 2 -n 60 60 60"));
        assert!(text.contains("-nx 512 -ny 512 -nz 512"));
        assert!(text.contains("-s 30 -p"));
        assert!(text.contains("-p 3 -l -n 512000"));
        // LULESH only runs on cube process counts.
        assert!(text.contains("64, 512"));
        assert!(text.contains("64, 128, 256, 512"));
    }
}
