//! The paper's experiment matrices.
//!
//! Section V-B of the paper defines two sweeps, both run with and without fault
//! injection and for every design of the registry ([`crate::designs`] — the
//! paper's three plus `SHRINK-FTI` unless `MATCH_SHRINK=0`):
//!
//! * the **scaling sweep** — every application on 64, 128, 256 and 512 processes
//!   (LULESH: 64 and 512) at the small input (Figs. 5–7);
//! * the **input-size sweep** — every application on the default 64 processes at the
//!   small, medium and large inputs (Figs. 8–10).
//!
//! Because the original process counts are sized for a 32-node cluster, the matrix
//! builders take the process counts as a parameter; [`MatrixOptions::default`] uses a
//! scaled-down ladder (8–64 ranks) that preserves the scaling trends on a laptop, and
//! [`MatrixOptions::paper`] uses the original 64–512.

use proxies::{InputSize, ProxyKind};

use crate::designs::enabled_designs;
use crate::experiment::{Experiment, SuiteOptions};

/// Options controlling the generated matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixOptions {
    /// The process-count ladder used by the scaling sweep (subsetted per application
    /// through [`scaled_process_counts`]).
    pub process_counts: Vec<usize>,
    /// The process count used by the input-size sweep (the paper's default is 64).
    pub default_procs: usize,
    /// The applications to include.
    pub apps: Vec<ProxyKind>,
    /// Suite-wide options (scale, repetitions, seed).
    pub suite: SuiteOptions,
}

impl MatrixOptions {
    /// The paper's original matrix: 64–512 processes, all six applications.
    pub fn paper() -> Self {
        MatrixOptions {
            process_counts: vec![64, 128, 256, 512],
            default_procs: 64,
            apps: ProxyKind::ALL.to_vec(),
            suite: SuiteOptions::paper(),
        }
    }

    /// A laptop-scale matrix preserving the scaling trends: 8–64 processes, smoke-scale
    /// inputs, one repetition.
    pub fn laptop() -> Self {
        MatrixOptions {
            process_counts: vec![8, 16, 32, 64],
            default_procs: 8,
            apps: ProxyKind::ALL.to_vec(),
            suite: SuiteOptions {
                scale: proxies::registry::ExecutionScale::smoke(),
                ..SuiteOptions::bench()
            },
        }
    }

    /// Restricts the matrix to the given applications.
    pub fn with_apps(mut self, apps: Vec<ProxyKind>) -> Self {
        self.apps = apps;
        self
    }

    /// Overrides the process-count ladder.
    pub fn with_process_counts(mut self, counts: Vec<usize>) -> Self {
        assert!(!counts.is_empty(), "need at least one process count");
        self.process_counts = counts;
        self.default_procs = counts_first(&self.process_counts);
        self
    }
}

fn counts_first(counts: &[usize]) -> usize {
    *counts.first().expect("non-empty process counts")
}

impl Default for MatrixOptions {
    fn default() -> Self {
        Self::laptop()
    }
}

/// The process counts an application runs on, intersected with the configured ladder:
/// LULESH needs a cube number of processes, so it keeps only the first and last rung of
/// the ladder, mirroring the paper's 64-and-512-only configuration.
pub fn scaled_process_counts(app: ProxyKind, options: &MatrixOptions) -> Vec<usize> {
    match app {
        ProxyKind::Lulesh => {
            let mut v = Vec::new();
            if let Some(first) = options.process_counts.first() {
                v.push(*first);
            }
            if let Some(last) = options.process_counts.last() {
                if Some(last) != options.process_counts.first() {
                    v.push(*last);
                }
            }
            v
        }
        _ => options.process_counts.clone(),
    }
}

/// The scaling sweep (Figs. 5–7): every application × every design × every process
/// count, at the small input.
pub fn scaling_matrix(options: &MatrixOptions, inject_failure: bool) -> Vec<Experiment> {
    let mut experiments = Vec::new();
    for &app in &options.apps {
        for nprocs in scaled_process_counts(app, options) {
            for &strategy in enabled_designs() {
                experiments.push(
                    Experiment::new(app, InputSize::Small, nprocs, strategy)
                        .with_options(&options.suite)
                        .with_failure(inject_failure),
                );
            }
        }
    }
    experiments
}

/// The input-size sweep (Figs. 8–10): every application × every design × the three
/// input sizes, at the default process count.
pub fn input_size_matrix(options: &MatrixOptions, inject_failure: bool) -> Vec<Experiment> {
    let mut experiments = Vec::new();
    for &app in &options.apps {
        for input in InputSize::ALL {
            for &strategy in enabled_designs() {
                experiments.push(
                    Experiment::new(app, input, options.default_procs, strategy)
                        .with_options(&options.suite)
                        .with_failure(inject_failure),
                );
            }
        }
    }
    experiments
}

/// The union of every experiment behind Figs. 5–10: the scaling sweep and the
/// input-size sweep, each with and without fault injection.
///
/// The `match-bench all` target feeds this to
/// [`SuiteEngine::run_matrix`](crate::engine::SuiteEngine::run_matrix) as one wave,
/// so the whole evaluation saturates the worker pool once and every figure then
/// renders from cache.
pub fn full_suite_matrix(options: &MatrixOptions) -> Vec<Experiment> {
    let mut experiments = scaling_matrix(options, false);
    experiments.extend(scaling_matrix(options, true));
    experiments.extend(input_size_matrix(options, false));
    experiments.extend(input_size_matrix(options, true));
    experiments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matrix_sizes_match_the_evaluation() {
        let options = MatrixOptions::paper();
        let scaling = scaling_matrix(&options, false);
        // 5 apps x 4 scales x 4 designs + LULESH x 2 scales x 4 designs = 80 + 8 = 88.
        assert_eq!(scaling.len(), 88);
        let inputs = input_size_matrix(&options, true);
        // 6 apps x 3 sizes x 4 designs.
        assert_eq!(inputs.len(), 72);
        assert!(inputs.iter().all(|e| e.nprocs == 64 && e.inject_failure()));
    }

    #[test]
    fn every_matrix_cell_group_covers_the_whole_design_registry() {
        // Dropping a design from a sweep must fail loudly, not shrink a figure: every
        // (app, nprocs) group of the scaling sweep and every (app, input) group of
        // the input-size sweep carries exactly the registry's designs, in order.
        let designs: Vec<_> = crate::designs::enabled_designs().to_vec();
        let options = MatrixOptions::laptop();
        let scaling = scaling_matrix(&options, true);
        for chunk in scaling.chunks(designs.len()) {
            let got: Vec<_> = chunk.iter().map(|e| e.strategy).collect();
            assert_eq!(got, designs, "scaling sweep group dropped a design");
        }
        let inputs = input_size_matrix(&options, true);
        for chunk in inputs.chunks(designs.len()) {
            let got: Vec<_> = chunk.iter().map(|e| e.strategy).collect();
            assert_eq!(got, designs, "input-size sweep group dropped a design");
        }
    }

    #[test]
    fn lulesh_only_gets_first_and_last_rung() {
        let options = MatrixOptions::laptop();
        assert_eq!(
            scaled_process_counts(ProxyKind::Lulesh, &options),
            vec![8, 64]
        );
        assert_eq!(
            scaled_process_counts(ProxyKind::Amg, &options),
            vec![8, 16, 32, 64]
        );
    }

    #[test]
    fn with_apps_and_counts_restrict_the_matrix() {
        let options = MatrixOptions::laptop()
            .with_apps(vec![ProxyKind::Hpccg])
            .with_process_counts(vec![4, 8]);
        let scaling = scaling_matrix(&options, false);
        assert_eq!(scaling.len(), 2 * 4);
        assert!(scaling.iter().all(|e| e.app == ProxyKind::Hpccg));
        assert_eq!(options.default_procs, 4);
    }

    #[test]
    #[should_panic]
    fn empty_process_counts_panic() {
        let _ = MatrixOptions::laptop().with_process_counts(vec![]);
    }

    #[test]
    fn full_suite_matrix_is_the_union_of_the_four_sweeps() {
        let options = MatrixOptions::paper();
        let all = full_suite_matrix(&options);
        // 88 scaling cells and 72 input cells, each with and without failure.
        assert_eq!(all.len(), 2 * 88 + 2 * 72);
        assert_eq!(all.iter().filter(|e| e.inject_failure()).count(), 88 + 72);
    }
}
