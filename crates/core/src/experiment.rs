//! Experiment descriptions.

use proxies::registry::ExecutionScale;
use proxies::{InputSize, ProxyKind};
use recovery::RecoveryStrategy;

/// Global options applied to every experiment of a suite run: how far inputs are
/// scaled down, how many repetitions are averaged, and the failure-injection seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteOptions {
    /// Execution scale applied to the Table I inputs.
    pub scale: ExecutionScale,
    /// Number of repetitions averaged per configuration (the paper uses five).
    pub repetitions: u32,
    /// Seed for the random failure plans.
    pub seed: u64,
}

impl SuiteOptions {
    /// The paper's setup: full Table I extents, five repetitions.
    pub fn paper() -> Self {
        SuiteOptions {
            scale: ExecutionScale::paper(),
            repetitions: 5,
            seed: 2020,
        }
    }

    /// The default bench setup: quarter-scale extents, one repetition.
    pub fn bench() -> Self {
        SuiteOptions {
            scale: ExecutionScale::bench(),
            repetitions: 1,
            seed: 2020,
        }
    }

    /// A tiny setup for unit tests and examples.
    pub fn smoke() -> Self {
        SuiteOptions {
            scale: ExecutionScale::smoke(),
            repetitions: 1,
            seed: 7,
        }
    }
}

impl Default for SuiteOptions {
    fn default() -> Self {
        Self::bench()
    }
}

/// The failure scenario an experiment runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureScenario {
    /// Failure-free execution.
    None,
    /// The paper's methodology: exactly one seeded random process failure.
    SingleRandom,
    /// An MTBF-driven multi-failure arrival process: seeded exponential inter-arrival
    /// draws whose rate scales with the node count, with optional correlated node
    /// crashes, rack-neighbour cascades and recovery-window follow-up kills.
    Mtbf {
        /// Mean iterations between failures of a single node.
        node_mtbf_iterations: u32,
        /// Percent chance an event is a node crash instead of a process kill.
        node_crash_pct: u8,
        /// Percent chance a node crash cascades to **another node of the victim's
        /// rack** one iteration later (real rack correlation over the topology's
        /// rack dimension; a scenario with cascades checkpoints at the erasure-coded
        /// L3 level, see `runner::run_single`).
        rack_neighbor_pct: u8,
        /// Percent chance a kill is followed by a second kill in the recovery window.
        recovery_window_pct: u8,
    },
}

impl FailureScenario {
    /// Whether this scenario injects any failures.
    pub fn injects_failure(&self) -> bool {
        !matches!(self, FailureScenario::None)
    }
}

/// One experiment: a workload, a scale, a fault-tolerance design, and the failure
/// scenario it runs under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Experiment {
    /// The proxy application.
    pub app: ProxyKind,
    /// The Table I input size.
    pub input: InputSize,
    /// Number of MPI processes.
    pub nprocs: usize,
    /// The fault-tolerance design.
    pub strategy: RecoveryStrategy,
    /// The failure scenario.
    pub scenario: FailureScenario,
    /// Execution scale.
    pub scale: ExecutionScale,
    /// Number of repetitions to average.
    pub repetitions: u32,
    /// Failure-plan seed.
    pub seed: u64,
}

impl Experiment {
    /// Creates an experiment with the default (bench) options and no failure.
    pub fn new(
        app: ProxyKind,
        input: InputSize,
        nprocs: usize,
        strategy: RecoveryStrategy,
    ) -> Self {
        let options = SuiteOptions::default();
        Experiment {
            app,
            input,
            nprocs,
            strategy,
            scenario: FailureScenario::None,
            scale: options.scale,
            repetitions: options.repetitions,
            seed: options.seed,
        }
    }

    /// Enables or disables the paper's single-random-failure injection.
    pub fn with_failure(mut self, inject: bool) -> Self {
        self.scenario = if inject {
            FailureScenario::SingleRandom
        } else {
            FailureScenario::None
        };
        self
    }

    /// Sets the full failure scenario.
    pub fn with_scenario(mut self, scenario: FailureScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Whether this experiment injects any failure.
    pub fn inject_failure(&self) -> bool {
        self.scenario.injects_failure()
    }

    /// Applies suite-wide options.
    pub fn with_options(mut self, options: &SuiteOptions) -> Self {
        self.scale = options.scale;
        self.repetitions = options.repetitions;
        self.seed = options.seed;
        self
    }

    /// Overrides the number of repetitions.
    pub fn with_repetitions(mut self, repetitions: u32) -> Self {
        self.repetitions = repetitions.max(1);
        self
    }

    /// A short human-readable label ("HPCCG/Small/64/REINIT-FTI").
    pub fn label(&self) -> String {
        let suffix = match self.scenario {
            FailureScenario::None => String::new(),
            FailureScenario::SingleRandom => "/fault".to_string(),
            FailureScenario::Mtbf {
                node_mtbf_iterations,
                ..
            } => format!("/mtbf{node_mtbf_iterations}"),
        };
        format!(
            "{}/{}/{}/{}{}",
            self.app.name(),
            self.input.name(),
            self.nprocs,
            self.strategy.design_name(),
            suffix
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_presets() {
        assert_eq!(SuiteOptions::paper().repetitions, 5);
        assert_eq!(SuiteOptions::default(), SuiteOptions::bench());
        assert!(
            SuiteOptions::smoke().scale.linear_fraction
                < SuiteOptions::paper().scale.linear_fraction
        );
    }

    #[test]
    fn experiment_builders_and_label() {
        let e = Experiment::new(
            ProxyKind::Amg,
            InputSize::Medium,
            64,
            RecoveryStrategy::Ulfm,
        )
        .with_failure(true)
        .with_repetitions(3);
        assert!(e.inject_failure());
        assert_eq!(e.repetitions, 3);
        assert_eq!(e.label(), "AMG/Medium/64/ULFM-FTI/fault");
        let quiet = e.with_failure(false);
        assert_eq!(quiet.label(), "AMG/Medium/64/ULFM-FTI");
    }

    #[test]
    fn with_options_applies_scale_and_seed() {
        let opts = SuiteOptions::smoke();
        let e = Experiment::new(
            ProxyKind::Hpccg,
            InputSize::Small,
            8,
            RecoveryStrategy::Reinit,
        )
        .with_options(&opts);
        assert_eq!(e.seed, opts.seed);
        assert_eq!(e.scale, opts.scale);
    }
}
