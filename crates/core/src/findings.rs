//! The headline findings of Section V-C, derived from figure data.
//!
//! The paper reports, averaged over its with-failure runs:
//!
//! * ULFM recovery is up to 13× (4× on average) slower than Reinit recovery;
//! * Restart recovery is up to 22× (16× on average) slower than Reinit recovery;
//! * Restart recovery is 2–3× slower than ULFM recovery;
//! * checkpoint writing accounts for about 13% of the total execution time;
//! * ULFM delays application execution even without failures, Reinit does not.

use crate::engine::{SuiteEngine, SuiteError};
use crate::figures::{fig6_with_engine, FigureData};
use crate::matrix::MatrixOptions;
use crate::table::TextTable;

/// Aggregated comparison ratios between the three designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Findings {
    /// Average of ULFM recovery time / Reinit recovery time over all cells.
    pub ulfm_over_reinit_avg: f64,
    /// Maximum of ULFM recovery time / Reinit recovery time.
    pub ulfm_over_reinit_max: f64,
    /// Average of Restart recovery time / Reinit recovery time.
    pub restart_over_reinit_avg: f64,
    /// Maximum of Restart recovery time / Reinit recovery time.
    pub restart_over_reinit_max: f64,
    /// Average of Restart recovery time / ULFM recovery time.
    pub restart_over_ulfm_avg: f64,
    /// Average fraction of total time spent writing checkpoints (over all cells).
    pub checkpoint_fraction_avg: f64,
    /// Average of ULFM application time / Restart (baseline) application time: the
    /// application-execution inflation caused by ULFM's background work.
    pub ulfm_app_inflation_avg: f64,
    /// Average of Shrink recovery time / Reinit recovery time (0.0 when the figure
    /// carries no `SHRINK-FTI` rows, e.g. under `MATCH_SHRINK=0`). Beyond the
    /// paper: shrinking pays revoke + shrink + agree plus the data redistribution,
    /// but never a respawn or a job relaunch.
    pub shrink_over_reinit_avg: f64,
}

impl Findings {
    /// Regenerates the Fig. 6 matrix through `engine` and derives the findings from
    /// it. When the engine already ran Fig. 6 (or Fig. 7, which shares every cell),
    /// this recomputes nothing: all cells are answered from the result cache.
    pub fn compute(engine: &SuiteEngine, options: &MatrixOptions) -> Result<Findings, SuiteError> {
        Ok(Findings::from_figure(&fig6_with_engine(engine, options)?))
    }

    /// Derives the findings from with-failure figure data (Fig. 6/7 or Fig. 9/10
    /// style). Cells are matched by (application, group).
    ///
    /// # Panics
    ///
    /// Panics if the figure does not contain the paper's three designs for some
    /// cell. `SHRINK-FTI` rows are aggregated when present (they are absent under
    /// `MATCH_SHRINK=0`).
    pub fn from_figure(data: &FigureData) -> Findings {
        let mut ulfm_ratio = Vec::new();
        let mut restart_ratio = Vec::new();
        let mut restart_over_ulfm = Vec::new();
        let mut shrink_ratio = Vec::new();
        let mut ckpt_fraction = Vec::new();
        let mut app_inflation = Vec::new();

        let mut cells: std::collections::BTreeMap<
            (String, String),
            [Option<&crate::figures::FigureRow>; 4],
        > = std::collections::BTreeMap::new();
        for row in &data.rows {
            let entry = cells
                .entry((row.app.name().to_string(), row.group.clone()))
                .or_default();
            match row.design.as_str() {
                "RESTART-FTI" => entry[0] = Some(row),
                "ULFM-FTI" => entry[1] = Some(row),
                "REINIT-FTI" => entry[2] = Some(row),
                "SHRINK-FTI" => entry[3] = Some(row),
                other => panic!("unknown design {other}"),
            }
        }
        for ((app, group), designs) in &cells {
            let restart =
                designs[0].unwrap_or_else(|| panic!("missing RESTART-FTI for {app}/{group}"));
            let ulfm = designs[1].unwrap_or_else(|| panic!("missing ULFM-FTI for {app}/{group}"));
            let reinit =
                designs[2].unwrap_or_else(|| panic!("missing REINIT-FTI for {app}/{group}"));
            let shrink = designs[3];
            if data.with_failure && reinit.recovery > 0.0 {
                ulfm_ratio.push(ulfm.recovery / reinit.recovery);
                restart_ratio.push(restart.recovery / reinit.recovery);
                if ulfm.recovery > 0.0 {
                    restart_over_ulfm.push(restart.recovery / ulfm.recovery);
                }
                if let Some(shrink) = shrink {
                    shrink_ratio.push(shrink.recovery / reinit.recovery);
                }
            }
            for row in [Some(restart), Some(ulfm), Some(reinit), shrink]
                .into_iter()
                .flatten()
            {
                if row.total() > 0.0 {
                    ckpt_fraction.push(row.checkpoint_write / row.total());
                }
            }
            if restart.application > 0.0 {
                app_inflation.push(ulfm.application / restart.application);
            }
        }

        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);

        Findings {
            ulfm_over_reinit_avg: avg(&ulfm_ratio),
            ulfm_over_reinit_max: max(&ulfm_ratio),
            restart_over_reinit_avg: avg(&restart_ratio),
            restart_over_reinit_max: max(&restart_ratio),
            restart_over_ulfm_avg: avg(&restart_over_ulfm),
            checkpoint_fraction_avg: avg(&ckpt_fraction),
            ulfm_app_inflation_avg: avg(&app_inflation),
            shrink_over_reinit_avg: avg(&shrink_ratio),
        }
    }

    /// Renders the findings next to the paper's reported values.
    pub fn to_table(&self) -> TextTable {
        let mut t = TextTable::new(vec!["Finding", "Paper", "Measured"]);
        t.add_row(vec![
            "ULFM recovery / Reinit recovery (avg)".to_string(),
            "4x".to_string(),
            format!("{:.1}x", self.ulfm_over_reinit_avg),
        ]);
        t.add_row(vec![
            "ULFM recovery / Reinit recovery (max)".to_string(),
            "13x".to_string(),
            format!("{:.1}x", self.ulfm_over_reinit_max),
        ]);
        t.add_row(vec![
            "Restart recovery / Reinit recovery (avg)".to_string(),
            "16x".to_string(),
            format!("{:.1}x", self.restart_over_reinit_avg),
        ]);
        t.add_row(vec![
            "Restart recovery / Reinit recovery (max)".to_string(),
            "22x".to_string(),
            format!("{:.1}x", self.restart_over_reinit_max),
        ]);
        t.add_row(vec![
            "Restart recovery / ULFM recovery (avg)".to_string(),
            "2-3x".to_string(),
            format!("{:.1}x", self.restart_over_ulfm_avg),
        ]);
        t.add_row(vec![
            "Checkpoint write share of total time".to_string(),
            "~13%".to_string(),
            format!("{:.0}%", self.checkpoint_fraction_avg * 100.0),
        ]);
        t.add_row(vec![
            "ULFM application-time inflation vs. baseline".to_string(),
            "grows with scale".to_string(),
            format!("{:.2}x", self.ulfm_app_inflation_avg),
        ]);
        if self.shrink_over_reinit_avg > 0.0 {
            t.add_row(vec![
                "Shrink recovery / Reinit recovery (avg)".to_string(),
                "beyond the paper".to_string(),
                format!("{:.1}x", self.shrink_over_reinit_avg),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{FigureData, FigureRow};
    use proxies::ProxyKind;

    fn synthetic_figure() -> FigureData {
        let mut rows = Vec::new();
        for (design, app_time, recovery) in [
            ("RESTART-FTI", 10.0, 10.0),
            ("ULFM-FTI", 12.0, 4.0),
            ("REINIT-FTI", 10.0, 1.0),
        ] {
            rows.push(FigureRow {
                app: ProxyKind::Hpccg,
                group: "64".to_string(),
                design: design.to_string(),
                application: app_time,
                checkpoint_write: 1.5,
                recovery,
            });
        }
        FigureData {
            title: "synthetic".into(),
            with_failure: true,
            rows,
        }
    }

    #[test]
    fn ratios_from_synthetic_data() {
        let f = Findings::from_figure(&synthetic_figure());
        assert!((f.ulfm_over_reinit_avg - 4.0).abs() < 1e-9);
        assert!((f.restart_over_reinit_avg - 10.0).abs() < 1e-9);
        assert!((f.restart_over_ulfm_avg - 2.5).abs() < 1e-9);
        assert!((f.ulfm_app_inflation_avg - 1.2).abs() < 1e-9);
        assert!(f.checkpoint_fraction_avg > 0.0 && f.checkpoint_fraction_avg < 1.0);
        // Without SHRINK-FTI rows (the MATCH_SHRINK=0 shape) the shrink ratio is
        // absent from the numbers and the table alike.
        assert_eq!(f.shrink_over_reinit_avg, 0.0);
        let table = f.to_table().render();
        assert!(table.contains("Paper"));
        assert!(table.contains("4.0x"));
        assert!(!table.contains("Shrink recovery"));
    }

    #[test]
    fn shrink_rows_feed_the_shrink_ratio_when_present() {
        let mut data = synthetic_figure();
        data.rows.push(FigureRow {
            app: ProxyKind::Hpccg,
            group: "64".to_string(),
            design: "SHRINK-FTI".to_string(),
            application: 11.0,
            checkpoint_write: 1.5,
            recovery: 2.0,
        });
        let f = Findings::from_figure(&data);
        assert!((f.shrink_over_reinit_avg - 2.0).abs() < 1e-9);
        // The paper ratios are untouched by the extra design.
        assert!((f.ulfm_over_reinit_avg - 4.0).abs() < 1e-9);
        let table = f.to_table().render();
        assert!(table.contains("Shrink recovery / Reinit recovery"));
        assert!(table.contains("2.0x"));
    }

    #[test]
    #[should_panic]
    fn missing_design_panics() {
        let mut data = synthetic_figure();
        data.rows.retain(|r| r.design != "ULFM-FTI");
        let _ = Findings::from_figure(&data);
    }
}
