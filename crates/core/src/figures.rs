//! Figure generators: the data series behind Figs. 5–10 of the paper.
//!
//! Each generator runs the relevant experiment matrix and produces a [`FigureData`]
//! whose rows carry the same quantities the paper's stacked bars show: the application
//! time, the checkpoint-write time and (for the with-failure figures) the MPI recovery
//! time, for every (application, group, design) combination. `group` is the process
//! count for the scaling figures and the input size for the input-size figures.
//!
//! All generators execute through a [`SuiteEngine`]: the plain functions use the
//! process-wide [`SuiteEngine::global`] instance (so repeated targets — Fig. 6
//! followed by Fig. 7 or the findings — are answered from the result cache), and each
//! has a `*_with_engine` variant for callers that manage their own engine, e.g. to
//! pin the job count or isolate cache statistics.

use proxies::ProxyKind;
use recovery::RunReport;

use crate::engine::{SuiteEngine, SuiteError};
use crate::experiment::Experiment;
use crate::matrix::{input_size_matrix, scaling_matrix, MatrixOptions};
use crate::table::{secs, TextTable};

/// One row of a figure: one (application, group, design) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureRow {
    /// The proxy application.
    pub app: ProxyKind,
    /// The group label (process count for Figs. 5–7, input size for Figs. 8–10).
    pub group: String,
    /// The fault-tolerance design name ("RESTART-FTI", ...).
    pub design: String,
    /// Application execution time (seconds of virtual time).
    pub application: f64,
    /// Checkpoint-write time.
    pub checkpoint_write: f64,
    /// MPI recovery time (zero in the failure-free figures).
    pub recovery: f64,
}

impl FigureRow {
    /// The stacked-bar total.
    pub fn total(&self) -> f64 {
        self.application + self.checkpoint_write + self.recovery
    }
}

/// A figure: a title plus its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureData {
    /// Figure title (e.g. "Figure 5: execution time breakdown, no failures").
    pub title: String,
    /// Whether the recovery column is meaningful for this figure.
    pub with_failure: bool,
    /// The rows, ordered by application, then group, then design.
    pub rows: Vec<FigureRow>,
}

impl FigureData {
    /// Renders the figure as an aligned text table (the textual equivalent of the
    /// paper's stacked bars).
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "Application",
            "Group",
            "Design",
            "Application (s)",
            "Write Checkpoints (s)",
            "Recovery (s)",
            "Total (s)",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.app.name().to_string(),
                row.group.clone(),
                row.design.clone(),
                secs(row.application),
                secs(row.checkpoint_write),
                secs(row.recovery),
                secs(row.total()),
            ]);
        }
        table
    }

    /// Renders the title plus the table.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, self.to_table().render())
    }

    /// The rows belonging to one application.
    pub fn rows_for(&self, app: ProxyKind) -> Vec<&FigureRow> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }
}

fn row_from_report(experiment: &Experiment, group: String, report: &RunReport) -> FigureRow {
    FigureRow {
        app: experiment.app,
        group,
        design: experiment.strategy.design_name().to_string(),
        application: report.application_time().as_secs(),
        checkpoint_write: report.checkpoint_time().as_secs(),
        recovery: report.recovery_time().as_secs(),
    }
}

fn run_matrix(
    engine: &SuiteEngine,
    title: &str,
    experiments: Vec<Experiment>,
    group_by_procs: bool,
    with_failure: bool,
) -> Result<FigureData, SuiteError> {
    let reports = engine.run_matrix(&experiments)?;
    let rows = experiments
        .iter()
        .zip(&reports)
        .map(|(e, report)| {
            let group = if group_by_procs {
                e.nprocs.to_string()
            } else {
                e.input.name().to_string()
            };
            row_from_report(e, group, report)
        })
        .collect();
    Ok(FigureData {
        title: title.to_string(),
        with_failure,
        rows,
    })
}

/// Figure 5: execution-time breakdown across scaling sizes, **no failures**.
pub fn fig5_scaling_no_failure(options: &MatrixOptions) -> Result<FigureData, SuiteError> {
    fig5_with_engine(SuiteEngine::global(), options)
}

/// [`fig5_scaling_no_failure`] on a caller-provided engine.
pub fn fig5_with_engine(
    engine: &SuiteEngine,
    options: &MatrixOptions,
) -> Result<FigureData, SuiteError> {
    run_matrix(
        engine,
        "Figure 5: execution time breakdown across scaling sizes (no process failures)",
        scaling_matrix(options, false),
        true,
        false,
    )
}

/// Figure 6: execution-time breakdown across scaling sizes, **with one process
/// failure**.
pub fn fig6_scaling_with_failure(options: &MatrixOptions) -> Result<FigureData, SuiteError> {
    fig6_with_engine(SuiteEngine::global(), options)
}

/// [`fig6_scaling_with_failure`] on a caller-provided engine.
pub fn fig6_with_engine(
    engine: &SuiteEngine,
    options: &MatrixOptions,
) -> Result<FigureData, SuiteError> {
    run_matrix(
        engine,
        "Figure 6: execution time breakdown recovering from a process failure across scaling sizes",
        scaling_matrix(options, true),
        true,
        true,
    )
}

/// Figure 7: MPI recovery time across scaling sizes (derived from the same runs as
/// Fig. 6 but reporting only the recovery component — with the engine cache, the
/// second of the two figures costs no additional simulation).
pub fn fig7_recovery_scaling(options: &MatrixOptions) -> Result<FigureData, SuiteError> {
    fig7_with_engine(SuiteEngine::global(), options)
}

/// [`fig7_recovery_scaling`] on a caller-provided engine.
pub fn fig7_with_engine(
    engine: &SuiteEngine,
    options: &MatrixOptions,
) -> Result<FigureData, SuiteError> {
    run_matrix(
        engine,
        "Figure 7: recovery time for different scaling sizes",
        scaling_matrix(options, true),
        true,
        true,
    )
}

/// Figure 8: execution-time breakdown across input sizes, no failures.
pub fn fig8_input_no_failure(options: &MatrixOptions) -> Result<FigureData, SuiteError> {
    fig8_with_engine(SuiteEngine::global(), options)
}

/// [`fig8_input_no_failure`] on a caller-provided engine.
pub fn fig8_with_engine(
    engine: &SuiteEngine,
    options: &MatrixOptions,
) -> Result<FigureData, SuiteError> {
    run_matrix(
        engine,
        "Figure 8: execution time breakdown across input problem sizes (no process failures)",
        input_size_matrix(options, false),
        false,
        false,
    )
}

/// Figure 9: execution-time breakdown across input sizes, with one process failure.
pub fn fig9_input_with_failure(options: &MatrixOptions) -> Result<FigureData, SuiteError> {
    fig9_with_engine(SuiteEngine::global(), options)
}

/// [`fig9_input_with_failure`] on a caller-provided engine.
pub fn fig9_with_engine(
    engine: &SuiteEngine,
    options: &MatrixOptions,
) -> Result<FigureData, SuiteError> {
    run_matrix(
        engine,
        "Figure 9: execution time breakdown recovering from a process failure across input problem sizes",
        input_size_matrix(options, true),
        false,
        true,
    )
}

/// Figure 10: MPI recovery time across input sizes (shares every run with Fig. 9
/// through the engine cache).
pub fn fig10_recovery_input(options: &MatrixOptions) -> Result<FigureData, SuiteError> {
    fig10_with_engine(SuiteEngine::global(), options)
}

/// [`fig10_recovery_input`] on a caller-provided engine.
pub fn fig10_with_engine(
    engine: &SuiteEngine,
    options: &MatrixOptions,
) -> Result<FigureData, SuiteError> {
    run_matrix(
        engine,
        "Figure 10: recovery time for different input problem sizes",
        input_size_matrix(options, true),
        false,
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SuiteOptions;
    use proxies::registry::ExecutionScale;

    fn tiny_options() -> MatrixOptions {
        MatrixOptions::laptop()
            .with_apps(vec![ProxyKind::Hpccg])
            .with_process_counts(vec![2, 4])
    }

    #[test]
    fn fig5_rows_cover_all_designs_and_groups() {
        let data = fig5_scaling_no_failure(&tiny_options()).unwrap();
        assert_eq!(data.rows.len(), 2 * 4);
        assert!(!data.with_failure);
        for row in &data.rows {
            assert!(row.application > 0.0);
            assert!(row.checkpoint_write > 0.0);
            assert_eq!(row.recovery, 0.0);
            assert!(row.total() > row.application);
        }
        let text = data.render();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("REINIT-FTI"));
        assert!(text.contains("SHRINK-FTI"));
        assert_eq!(data.rows_for(ProxyKind::Hpccg).len(), 8);
    }

    #[test]
    fn no_figure_silently_drops_a_registry_design() {
        // The registry is the single source of the design axis: every
        // (application, group) cell of every figure must carry every enabled
        // design. A generator that enumerated a hardcoded subset would fail here.
        let expected: Vec<&str> = crate::designs::enabled_design_names();
        let options = tiny_options();
        for data in [
            fig5_scaling_no_failure(&options).unwrap(),
            fig6_scaling_with_failure(&options).unwrap(),
            fig7_recovery_scaling(&options).unwrap(),
        ] {
            let mut cells: std::collections::BTreeMap<(String, String), Vec<&str>> =
                std::collections::BTreeMap::new();
            for row in &data.rows {
                cells
                    .entry((row.app.name().to_string(), row.group.clone()))
                    .or_default()
                    .push(row.design.as_str());
            }
            assert!(!cells.is_empty());
            for ((app, group), designs) in &cells {
                assert_eq!(
                    designs, &expected,
                    "{}: cell {app}/{group} dropped a design",
                    data.title
                );
            }
        }
    }

    #[test]
    fn fig7_recovery_orders_designs_correctly() {
        let data = fig7_recovery_scaling(&tiny_options()).unwrap();
        for group in ["2", "4"] {
            let get = |design: &str| {
                data.rows
                    .iter()
                    .find(|r| r.group == group && r.design == design)
                    .map(|r| r.recovery)
                    .unwrap()
            };
            let restart = get("RESTART-FTI");
            let ulfm = get("ULFM-FTI");
            let reinit = get("REINIT-FTI");
            let shrink = get("SHRINK-FTI");
            assert!(reinit > 0.0);
            assert!(
                shrink > 0.0 && shrink < restart,
                "group {group}: shrink {shrink} must cost recovery but never a relaunch"
            );
            assert!(
                reinit < ulfm,
                "group {group}: reinit {reinit} !< ulfm {ulfm}"
            );
            assert!(
                ulfm < restart,
                "group {group}: ulfm {ulfm} !< restart {restart}"
            );
        }
    }

    #[test]
    fn fig8_groups_by_input_size() {
        let options = MatrixOptions {
            process_counts: vec![2],
            default_procs: 2,
            apps: vec![ProxyKind::MiniVite],
            suite: SuiteOptions {
                scale: ExecutionScale::smoke(),
                ..SuiteOptions::smoke()
            },
        };
        let data = fig8_input_no_failure(&options).unwrap();
        assert_eq!(data.rows.len(), 3 * 4);
        let groups: std::collections::BTreeSet<_> =
            data.rows.iter().map(|r| r.group.clone()).collect();
        assert_eq!(groups.len(), 3);
        assert!(groups.contains("Small") && groups.contains("Medium") && groups.contains("Large"));
    }

    #[test]
    fn fig6_then_fig7_reuses_every_run() {
        let engine = SuiteEngine::with_jobs(2);
        let options = tiny_options();
        let fig6 = fig6_with_engine(&engine, &options).unwrap();
        let after_fig6 = engine.cache_stats();
        assert_eq!(after_fig6.hits, 0);
        assert_eq!(after_fig6.misses as usize, fig6.rows.len());
        let fig7 = fig7_with_engine(&engine, &options).unwrap();
        let after_fig7 = engine.cache_stats();
        assert_eq!(
            after_fig7.misses, after_fig6.misses,
            "fig7 recomputes nothing"
        );
        assert_eq!(
            after_fig7.hits as usize,
            fig7.rows.len(),
            "fig7 is all cache hits"
        );
        // And the shared cells carry identical numbers.
        for (a, b) in fig6.rows.iter().zip(&fig7.rows) {
            assert_eq!(a.recovery, b.recovery);
        }
    }
}
