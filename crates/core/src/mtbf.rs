//! The MTBF sweep: efficiency versus failure rate, per fault-tolerance design.
//!
//! This is the classic Daly-style reliability curve the original paper stops short
//! of: instead of injecting exactly one failure, each cell runs the workload under an
//! MTBF-driven arrival process ([`FailureScenario::Mtbf`]) — seeded exponential
//! inter-arrival draws whose rate scales with the node count, optionally mixed with
//! correlated node crashes — and reports the resulting *efficiency*: the failure-free
//! completion time divided by the with-failures completion time. As the node MTBF
//! shrinks, recovery and redone work eat the machine, and the three designs separate
//! by their recovery cost exactly as Figs. 6–7 predict for the single-failure case.
//!
//! All cells execute through a [`SuiteEngine`], so re-running the sweep (or any
//! figure sharing its cells) is answered from the result cache.
//!
//! Note on correlated sweeps: scenarios with node crashes checkpoint at L2 (partner
//! copies leave the rack), and scenarios with rack-correlated cascades at the
//! erasure-coded L3 (groups span `group_size` distinct nodes with a periodic L4
//! anchor), while the failure-free baseline keeps the paper's L1 configuration. The
//! resulting efficiency curve therefore starts below 1.0 even at negligible failure
//! rates — that constant offset *is* the price of provisioning for node or rack
//! loss, which is exactly what the figure is meant to expose.

use proxies::{InputSize, ProxyKind};

use crate::designs::enabled_designs;
use crate::engine::{SuiteEngine, SuiteError};
use crate::experiment::{Experiment, FailureScenario, SuiteOptions};
use crate::matrix::MatrixOptions;
use crate::table::{secs, TextTable};

/// Options of an MTBF sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MtbfSweepOptions {
    /// The proxy application to sweep.
    pub app: ProxyKind,
    /// The input size.
    pub input: InputSize,
    /// Number of MPI processes.
    pub nprocs: usize,
    /// The node-MTBF ladder, in iterations of the main loop, largest (most reliable)
    /// first. The job-level failure rate additionally scales with the node count.
    pub node_mtbf_ladder: Vec<u32>,
    /// Percent of events that are correlated node crashes.
    pub node_crash_pct: u8,
    /// Percent of node crashes cascading to another node of the victim's rack
    /// (sweeps with cascades checkpoint at the erasure-coded L3 level).
    pub rack_neighbor_pct: u8,
    /// Percent of kills followed by a recovery-window kill.
    pub recovery_window_pct: u8,
    /// Suite-wide options (scale, repetitions, seed).
    pub suite: SuiteOptions,
}

impl MtbfSweepOptions {
    /// Derives sweep options from a figure matrix: the first configured application
    /// at the default process count. The default MTBF ladder scales with the
    /// configured execution scale's iteration cap (8× down to 1× the cap), so the
    /// sweep produces failures at every scale from smoke to paper.
    pub fn from_matrix(options: &MatrixOptions) -> Self {
        let cap = options.suite.scale.iteration_cap.max(1) as u32;
        MtbfSweepOptions {
            app: options.apps.first().copied().unwrap_or(ProxyKind::Hpccg),
            input: InputSize::Small,
            nprocs: options.default_procs,
            node_mtbf_ladder: vec![8 * cap, 4 * cap, 2 * cap, cap],
            node_crash_pct: 0,
            rack_neighbor_pct: 0,
            recovery_window_pct: 0,
            suite: options.suite,
        }
    }

    /// Overrides the MTBF ladder.
    pub fn with_ladder(mut self, ladder: Vec<u32>) -> Self {
        assert!(!ladder.is_empty(), "need at least one MTBF rung");
        self.node_mtbf_ladder = ladder;
        self
    }

    /// Sets the correlated-failure percentages.
    pub fn with_correlation(mut self, node_crash_pct: u8, rack_neighbor_pct: u8) -> Self {
        self.node_crash_pct = node_crash_pct;
        self.rack_neighbor_pct = rack_neighbor_pct;
        self
    }
}

/// One cell of the sweep: one design at one node MTBF.
#[derive(Debug, Clone, PartialEq)]
pub struct MtbfRow {
    /// The design name ("REINIT-FTI", ...).
    pub design: String,
    /// The node MTBF in iterations.
    pub node_mtbf_iterations: u32,
    /// Average failure events per run.
    pub failures: f64,
    /// Average global restarts per run.
    pub restarts: f64,
    /// Application time, seconds of virtual time.
    pub application: f64,
    /// Checkpoint-write time.
    pub checkpoint_write: f64,
    /// Recovery time.
    pub recovery: f64,
    /// Completion time of the with-failures run.
    pub total: f64,
    /// Failure-free completion time divided by `total` (1.0 = failures cost nothing).
    pub efficiency: f64,
}

/// The sweep result: a baseline per design plus one row per (design, MTBF) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MtbfSweep {
    /// Figure title.
    pub title: String,
    /// The rows, ordered by design then descending MTBF.
    pub rows: Vec<MtbfRow>,
}

impl MtbfSweep {
    /// Renders the sweep as an aligned text table.
    pub fn to_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "Design",
            "Node MTBF (it)",
            "Failures",
            "Restarts",
            "Application (s)",
            "Write Checkpoints (s)",
            "Recovery (s)",
            "Total (s)",
            "Efficiency",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.design.clone(),
                row.node_mtbf_iterations.to_string(),
                format!("{:.1}", row.failures),
                format!("{:.1}", row.restarts),
                secs(row.application),
                secs(row.checkpoint_write),
                secs(row.recovery),
                secs(row.total),
                format!("{:.3}", row.efficiency),
            ]);
        }
        table
    }

    /// Renders the title plus the table.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, self.to_table().render())
    }

    /// The rows of one design, in ladder order.
    pub fn rows_for(&self, design: &str) -> Vec<&MtbfRow> {
        self.rows.iter().filter(|r| r.design == design).collect()
    }
}

/// Runs the MTBF sweep through the process-wide engine.
///
/// # Errors
///
/// Surfaces the first failing cell as a [`SuiteError`].
pub fn mtbf_sweep(options: &MtbfSweepOptions) -> Result<MtbfSweep, SuiteError> {
    mtbf_sweep_with_engine(SuiteEngine::global(), options)
}

/// [`mtbf_sweep`] on a caller-provided engine.
///
/// # Errors
///
/// Surfaces the first failing cell as a [`SuiteError`].
pub fn mtbf_sweep_with_engine(
    engine: &SuiteEngine,
    options: &MtbfSweepOptions,
) -> Result<MtbfSweep, SuiteError> {
    // Schedule every cell (baselines + ladder) as one wave so the worker pool
    // saturates once; the per-cell reports are then recalled from the cache.
    let designs = enabled_designs();
    let mut experiments = Vec::new();
    for &strategy in designs {
        let base = Experiment::new(options.app, options.input, options.nprocs, strategy)
            .with_options(&options.suite);
        experiments.push(base);
        for &mtbf in &options.node_mtbf_ladder {
            experiments.push(base.with_scenario(FailureScenario::Mtbf {
                node_mtbf_iterations: mtbf,
                node_crash_pct: options.node_crash_pct,
                rack_neighbor_pct: options.rack_neighbor_pct,
                recovery_window_pct: options.recovery_window_pct,
            }));
        }
    }
    let reports = engine.run_matrix(&experiments)?;

    let mut rows = Vec::new();
    let per_design = 1 + options.node_mtbf_ladder.len();
    for (d, strategy) in designs.iter().enumerate() {
        let baseline = &reports[d * per_design];
        let baseline_total = baseline.total_time.as_secs();
        for (i, &mtbf) in options.node_mtbf_ladder.iter().enumerate() {
            let report = &reports[d * per_design + 1 + i];
            let reps = experiments[d * per_design + 1 + i].repetitions.max(1) as f64;
            let total = report.total_time.as_secs();
            rows.push(MtbfRow {
                design: strategy.design_name().to_string(),
                node_mtbf_iterations: mtbf,
                failures: report.failure_events as f64 / reps,
                restarts: report.restarts as f64 / reps,
                application: report.application_time().as_secs(),
                checkpoint_write: report.checkpoint_time().as_secs(),
                recovery: report.recovery_time().as_secs(),
                total,
                efficiency: if total > 0.0 {
                    baseline_total / total
                } else {
                    1.0
                },
            });
        }
    }
    Ok(MtbfSweep {
        title: format!(
            "MTBF sweep: efficiency vs. node failure rate ({} / {} / {} ranks)",
            options.app.name(),
            options.input.name(),
            options.nprocs
        ),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sweep() -> MtbfSweepOptions {
        MtbfSweepOptions {
            app: ProxyKind::Hpccg,
            input: InputSize::Small,
            nprocs: 4,
            node_mtbf_ladder: vec![64, 16],
            node_crash_pct: 0,
            rack_neighbor_pct: 0,
            recovery_window_pct: 0,
            suite: SuiteOptions::smoke(),
        }
    }

    #[test]
    fn sweep_produces_rows_per_design_and_rung() {
        let engine = SuiteEngine::with_jobs(2);
        let sweep = mtbf_sweep_with_engine(&engine, &tiny_sweep()).unwrap();
        assert_eq!(sweep.rows.len(), 4 * 2);
        for design in crate::designs::enabled_design_names() {
            assert_eq!(
                sweep.rows_for(design).len(),
                2,
                "{design} missing from the sweep"
            );
        }
        for row in &sweep.rows {
            assert!(row.total > 0.0);
            assert!(row.efficiency > 0.0 && row.efficiency <= 1.0 + 1e-9);
        }
        let text = sweep.render();
        assert!(text.contains("Efficiency"));
        assert_eq!(sweep.rows_for("REINIT-FTI").len(), 2);
    }

    #[test]
    fn shorter_mtbf_means_more_failures_and_lower_efficiency() {
        // A ladder with a strong contrast: at node MTBF 4096 the smoke-scale run sees
        // no failure at all, at 8 it sees several per run.
        let engine = SuiteEngine::with_jobs(2);
        let sweep =
            mtbf_sweep_with_engine(&engine, &tiny_sweep().with_ladder(vec![4096, 8])).unwrap();
        for design in ["RESTART-FTI", "ULFM-FTI", "REINIT-FTI"] {
            let rows = sweep.rows_for(design);
            assert!(
                rows[1].failures > rows[0].failures,
                "{design}: shorter MTBF must fail more ({} vs {})",
                rows[1].failures,
                rows[0].failures
            );
            assert!(
                rows[0].efficiency > rows[1].efficiency,
                "{design}: efficiency must drop as MTBF shrinks ({} vs {})",
                rows[0].efficiency,
                rows[1].efficiency
            );
        }
        // The designs separate by recovery cost at the failure-heavy end.
        let at8 = |d: &str| sweep.rows_for(d)[1].efficiency;
        assert!(at8("REINIT-FTI") > at8("ULFM-FTI"));
        assert!(at8("ULFM-FTI") > at8("RESTART-FTI"));
    }

    #[test]
    fn rerunning_the_sweep_hits_the_cache() {
        let engine = SuiteEngine::with_jobs(2);
        let first = mtbf_sweep_with_engine(&engine, &tiny_sweep()).unwrap();
        let misses = engine.cache_stats().misses;
        let second = mtbf_sweep_with_engine(&engine, &tiny_sweep()).unwrap();
        assert_eq!(first, second, "cached rerun must be verbatim");
        assert_eq!(
            engine.cache_stats().misses,
            misses,
            "second sweep recomputes nothing"
        );
    }
}
