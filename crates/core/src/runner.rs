//! Executes experiments on the simulated cluster.
//!
//! [`run_experiment`] and [`run_all_designs`] are convenience fronts over the
//! process-wide [`SuiteEngine`]: results are cached by
//! experiment content and failures are reported as [`SuiteError`] values instead of
//! panics. The uncached single-run primitives ([`run_experiment_uncached`],
//! [`run_single`]) remain available for tests and tools that must bypass the cache.

use std::sync::Arc;

use fti::store::CheckpointStore;
use fti::{FtiConfig, Protectable};
use mpisim::{Cluster, ClusterConfig, RunOutcome};
use proxies::registry::ProxySpec;
use recovery::{
    ArrivalModel, DriverOutcome, FailureTrace, FaultPlan, FtConfig, FtDriver, RecoveryStrategy,
    RunReport,
};

use crate::engine::{SuiteEngine, SuiteError};
use crate::experiment::{Experiment, FailureScenario};

/// Environment variable overriding the rack count experiments run on (the `nracks`
/// sweep knob): the paper-layout node count is regrouped into this many racks, which
/// must divide it. Plumbed through [`ClusterConfig::racks`]; the cache key derives
/// its failure-domain layout from the same configuration, so overridden sweeps can
/// never collide with default-layout results.
pub const RACKS_ENV_VAR: &str = "MATCH_RACKS";

/// The cluster configuration an experiment of `nprocs` ranks runs on. The single
/// source of the experiment → topology mapping: [`run_single`] builds its cluster
/// from it and [`crate::cache::ExperimentId`] derives the failure-domain layout of
/// its cache key from it, so the two can never silently diverge. Honours the
/// `MATCH_RACKS` rack-count override (and, through
/// [`ClusterConfig::with_ranks`], the `MATCH_BACKEND` scheduler selection — which
/// deliberately does *not* enter the cache key, since results are bit-identical
/// across backends).
pub fn experiment_cluster(nprocs: usize) -> ClusterConfig {
    let config = ClusterConfig::with_ranks(nprocs);
    let Ok(value) = std::env::var(RACKS_ENV_VAR) else {
        return config;
    };
    match value.trim().parse::<usize>() {
        Ok(r) if r > 0 => config.racks(r),
        _ => {
            // Warn once (this runs per experiment, including cache-key derivation)
            // instead of silently sweeping the default layout under a wrong label.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "warning: {RACKS_ENV_VAR}='{value}' is not a positive rack count; \
                     using the default paper layout"
                );
            });
            config
        }
    }
}

/// Runs one experiment through the process-wide engine: the result is recalled from
/// the cache when the same experiment (by content) has already run, and computed on
/// the spot otherwise.
///
/// An experiment whose ranks report unrecovered errors yields a
/// [`SuiteError::RankFailures`] instead of panicking.
pub fn run_experiment(experiment: &Experiment) -> Result<RunReport, SuiteError> {
    SuiteEngine::global().run(experiment)
}

/// Runs one experiment without consulting any cache: builds the cluster, runs the
/// configured proxy application under the configured fault-tolerance design
/// `repetitions` times, and averages the resulting time breakdowns (the paper
/// averages five repetitions to reduce noise; the simulator is deterministic, so
/// repetitions mostly matter when sweeping seeds).
pub fn run_experiment_uncached(experiment: &Experiment) -> Result<RunReport, SuiteError> {
    let reports: Vec<RunReport> = (0..experiment.repetitions.max(1))
        .map(|rep| run_single(experiment, rep))
        .collect::<Result<_, _>>()?;
    Ok(RunReport::average(&reports))
}

/// Runs one repetition of an experiment, uncached.
pub fn run_single(experiment: &Experiment, repetition: u32) -> Result<RunReport, SuiteError> {
    let spec = ProxySpec::new(experiment.app, experiment.input, experiment.scale);
    // Build the application once: the instance is immutable during execution, so all
    // ranks can run the same one, and its iteration count feeds the fault plan.
    let app = spec.build();
    let iterations = app.iterations();
    // The repetition seed reproduces the paper's "average over seeds" methodology.
    let rep_seed = experiment.seed ^ (repetition as u64).wrapping_mul(0x9E37_79B9);
    // The paper checkpoints every ten iterations. Scaled-down runs execute fewer
    // iterations, so the interval is tightened to keep at least two checkpoints per
    // run (never more often than every other iteration).
    let interval = 10u64.min((iterations / 2).max(1));
    let (fault, fti_config) = match experiment.scenario {
        FailureScenario::None => (FailureTrace::none(), FtiConfig::default()),
        FailureScenario::SingleRandom => {
            // Like the paper: a random rank and a random iteration, reproducible
            // through the seed (varied per repetition).
            (
                FaultPlan::random(rep_seed, iterations.max(2)).into(),
                FtiConfig::default(),
            )
        }
        FailureScenario::Mtbf {
            node_mtbf_iterations,
            node_crash_pct,
            rack_neighbor_pct,
            recovery_window_pct,
        } => {
            let model = ArrivalModel::exponential(
                rep_seed,
                node_mtbf_iterations.max(1) as f64,
                iterations.max(2),
            )
            .correlated(node_crash_pct, rack_neighbor_pct)
            .recovery_window(recovery_window_pct);
            // Crashes destroy node-local storage, so the checkpoint level is
            // provisioned for the failure domain the scenario actually exercises:
            // rack-correlated cascades (back-to-back node crashes inside one rack)
            // run the erasure-coded L3 — groups span `group_size` distinct nodes and
            // tolerate `m` node losses, with a periodic L4 flush as the anchor when
            // a cascade erases more than `m` shards of a group — while uncorrelated
            // node crashes keep the cheaper L2 (the partner copy leaves the rack).
            let fti = if node_crash_pct > 0 && rack_neighbor_pct > 0 {
                // Clamp the anchor onto a checkpoint wave the run actually reaches:
                // at smoke scale `interval * 4` exceeds the iteration count and the
                // promised L4 fallback would otherwise never exist.
                let anchor = interval * 4u64.min((iterations / interval).max(1));
                FtiConfig::level(fti::CheckpointLevel::L3).l4_every(anchor)
            } else if node_crash_pct > 0 {
                FtiConfig::level(fti::CheckpointLevel::L2)
            } else {
                FtiConfig::default()
            };
            (model.into(), fti)
        }
    };
    let ft_config =
        FtConfig::new(experiment.strategy, fti_config.interval(interval)).with_fault(fault);

    let cluster = Cluster::new(experiment_cluster(experiment.nprocs));
    let store = CheckpointStore::shared();
    let outcome = cluster.run(move |ctx| {
        let driver = FtDriver::new(ft_config.clone(), Arc::clone(&store));
        driver.execute(ctx, |ctx, fti, injector| app.run(ctx, fti, injector))
    });

    if !outcome.all_ok() {
        return Err(SuiteError::from_outcome(experiment.label(), &outcome));
    }

    Ok(summarize_outcome(
        experiment.strategy,
        experiment.nprocs,
        experiment.inject_failure(),
        &outcome,
    ))
}

/// Collapses the per-rank driver outcomes of one run to a [`RunReport`]: counters are
/// maxima over ranks, the per-attempt log takes element-wise maxima (the slowest-rank
/// convention of the breakdown), and each attempt's recovery path is the most severe
/// path any rank took (see [`recovery::CoveragePath::severity`]).
fn summarize_outcome<R>(
    strategy: RecoveryStrategy,
    nprocs: usize,
    failure_injected: bool,
    outcome: &RunOutcome<DriverOutcome<R>>,
) -> RunReport {
    let restarts = outcome
        .ranks()
        .iter()
        .map(|r| r.result.as_ref().map(|o| o.recoveries).unwrap_or(0))
        .max()
        .unwrap_or(0);
    let attempts = outcome
        .ranks()
        .iter()
        .map(|r| r.result.as_ref().map(|o| o.attempts).unwrap_or(0))
        .max()
        .unwrap_or(1);
    let failure_events = outcome
        .ranks()
        .iter()
        .map(|r| r.result.as_ref().map(|o| o.failure_events).unwrap_or(0))
        .max()
        .unwrap_or(0);
    // Per-attempt accounting: element-wise maxima over ranks (the same slowest-rank
    // convention as the breakdown). Every rank goes through every global restart, so
    // the logs line up by attempt index.
    let mut attempt_log = Vec::new();
    for i in 0..attempts as usize {
        let mut span = 0.0f64;
        let mut recovery = 0.0f64;
        let mut completed = false;
        let mut survivors = 0usize;
        let mut path = recovery::CoveragePath::fresh();
        let mut erasures = 0u32;
        for rank in outcome.ranks() {
            if let Ok(o) = &rank.result {
                if let Some(rec) = o.attempt_log.get(i) {
                    span = span.max(rec.ended_at.saturating_sub(rec.started_at).as_secs());
                    recovery = recovery.max(rec.recovery.as_secs());
                    completed |= rec.completed;
                    survivors = survivors.max(rec.survivors);
                    // Equal severities name the same mechanism (only the erasure
                    // counts can differ), so "first rank with the maximum severity"
                    // is order-independent for the label.
                    if rec.path.severity() > path.severity() {
                        path = rec.path;
                    }
                    erasures = erasures.max(rec.path.erasures);
                }
            }
        }
        path.erasures = erasures;
        attempt_log.push(recovery::AttemptSummary {
            attempt: i as u32 + 1,
            span_secs: span,
            recovery_secs: recovery,
            completed,
            survivors,
            path,
        });
    }

    RunReport {
        strategy,
        nprocs,
        failure_injected,
        breakdown: outcome.max_breakdown(),
        total_time: outcome.max_time(),
        stats: outcome.total_stats(),
        restarts,
        attempts,
        failure_events,
        attempt_log,
    }
}

/// Runs the same workload under every design of the registry and returns the
/// reports in [`crate::designs::enabled_designs`] order: the paper's three designs
/// first (Restart, Ulfm, Reinit), then the shrinking design unless
/// `MATCH_SHRINK=0`. Scheduled through the process-wide engine, so the designs run
/// concurrently when jobs allow.
pub fn run_all_designs(base: &Experiment) -> Result<Vec<RunReport>, SuiteError> {
    SuiteEngine::global().run_all_designs(base)
}

/// One explicit failure-trace run: a design, an FTI configuration and a concrete
/// event schedule, with none of [`Experiment`]'s scenario sampling in between. This
/// is the fault-space explorer's entry point; it deliberately has no cached form —
/// [`crate::cache::ExperimentId`] keys stay exactly as they are, and explorer runs
/// never touch the persistent result cache.
#[derive(Debug, Clone)]
pub struct TraceRunSpec {
    /// Number of processes (laid out by [`experiment_cluster`]).
    pub nprocs: usize,
    /// Main-loop iterations of the synthetic workload.
    pub iterations: u64,
    /// The recovery design to run.
    pub strategy: RecoveryStrategy,
    /// The FTI configuration (level, interval, retention schedule).
    pub fti: FtiConfig,
    /// The failure events to inject.
    pub trace: FailureTrace,
}

/// What [`run_trace`] returns: the usual run summary plus each rank's final value of
/// the synthetic workload (`None` for shrinking-recovery casualties), so callers can
/// check answers against a failure-free oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRunOutcome {
    /// The run summary, including the per-attempt recovery paths.
    pub report: RunReport,
    /// Final per-rank values of the synthetic workload.
    pub values: Vec<Option<f64>>,
}

/// Runs one explicit failure trace, uncached, under a synthetic iterative workload
/// (an all-reduce accumulation checkpointed through FTI, the same shape as the
/// recovery crate's driver tests): cheap enough for search loops, deterministic, and
/// with a closed-form failure-free answer for oracle checks.
///
/// # Errors
///
/// Reports invalid traces (victims outside the topology), driver give-ups (more
/// restarts than the driver's bound) and unreconstructible checkpoints under strict
/// (no-fallback) configurations as [`SuiteError::RankFailures`].
pub fn run_trace(spec: &TraceRunSpec) -> Result<TraceRunOutcome, SuiteError> {
    let iterations = spec.iterations.max(1);
    let ft_config = FtConfig::new(spec.strategy, spec.fti.clone()).with_fault(spec.trace.clone());
    let cluster = Cluster::new(experiment_cluster(spec.nprocs));
    let store = CheckpointStore::shared();
    let outcome = cluster.run(move |ctx| {
        let driver = FtDriver::new(ft_config.clone(), Arc::clone(&store));
        driver.execute(ctx, |ctx, fti, injector| {
            let world = ctx.world();
            let mut acc = 0.0f64;
            let mut start = 1u64;
            fti.protect(0, "acc", &acc);
            if fti.status().is_restart() {
                let at = fti.recover_object(ctx, 0, &mut acc)?;
                start = at + 1;
            }
            for iteration in start..=iterations {
                injector.maybe_fail(ctx, iteration)?;
                ctx.compute(5e4);
                let contribution = ctx.allreduce_sum_f64(&world, (ctx.rank() + 1) as f64)?;
                acc += contribution;
                if fti.should_checkpoint(iteration) {
                    fti.checkpoint(ctx, iteration, &[(0, &acc as &dyn Protectable)])?;
                }
            }
            fti.finalize(ctx)?;
            Ok(acc)
        })
    });
    if !outcome.all_ok() {
        return Err(SuiteError::from_outcome(
            format!("trace[{}@{}]", spec.strategy, spec.nprocs),
            &outcome,
        ));
    }
    let values = outcome
        .ranks()
        .iter()
        .map(|r| r.result.as_ref().ok().and_then(|o| o.value))
        .collect();
    let report = summarize_outcome(
        spec.strategy,
        spec.nprocs,
        spec.trace.injects_failure(),
        &outcome,
    );
    Ok(TraceRunOutcome { report, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::SuiteOptions;
    use mpisim::SimTime;
    use proxies::{InputSize, ProxyKind};
    use recovery::RecoveryStrategy;

    fn smoke_experiment(strategy: RecoveryStrategy, inject: bool) -> Experiment {
        Experiment::new(ProxyKind::Hpccg, InputSize::Small, 4, strategy)
            .with_options(&SuiteOptions::smoke())
            .with_failure(inject)
    }

    #[test]
    fn failure_free_run_has_no_recovery_time() {
        let report = run_experiment(&smoke_experiment(RecoveryStrategy::Reinit, false)).unwrap();
        assert_eq!(report.recovery_time(), SimTime::ZERO);
        assert!(report.application_time().as_secs() > 0.0);
        assert!(report.checkpoint_time().as_secs() > 0.0);
        assert_eq!(report.restarts, 0);
        assert!(!report.failure_injected);
    }

    #[test]
    fn injected_failure_produces_recovery_time_and_a_restart() {
        let report = run_experiment(&smoke_experiment(RecoveryStrategy::Reinit, true)).unwrap();
        assert!(report.recovery_time().as_secs() > 0.0);
        assert!(report.restarts >= 1);
        assert!(report.failure_injected);
    }

    #[test]
    fn all_designs_complete_and_are_ordered_on_recovery() {
        let base = smoke_experiment(RecoveryStrategy::Restart, true);
        let reports = run_all_designs(&base).unwrap();
        assert_eq!(reports.len(), crate::designs::enabled_designs().len());
        let restart = &reports[0];
        let ulfm = &reports[1];
        let reinit = &reports[2];
        let shrink = &reports[3];
        assert!(reinit.recovery_time() < ulfm.recovery_time());
        assert!(ulfm.recovery_time() < restart.recovery_time());
        assert!(shrink.recovery_time().as_secs() > 0.0);
        // The surviving world size is recorded per attempt: after the single
        // injected failure the shrinking design continues one rank short, while the
        // non-shrinking designs restore the full world.
        assert!(shrink
            .attempt_log
            .iter()
            .any(|a| a.survivors == base.nprocs - 1));
        assert!(restart
            .attempt_log
            .iter()
            .all(|a| a.survivors == base.nprocs));
    }

    #[test]
    fn repetitions_average_deterministic_runs() {
        let mut e = smoke_experiment(RecoveryStrategy::Reinit, false);
        e = e.with_repetitions(2);
        let avg = run_experiment(&e).unwrap();
        let single = run_experiment(&e.with_repetitions(1)).unwrap();
        // The simulator is deterministic, so averaging identical repetitions changes
        // nothing.
        assert!((avg.total_time.as_secs() - single.total_time.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn cached_and_uncached_runs_agree_exactly() {
        // Failure-free, hence bit-deterministic.
        let e = smoke_experiment(RecoveryStrategy::Ulfm, false);
        let through_engine = run_experiment(&e).unwrap();
        let fresh = run_experiment_uncached(&e).unwrap();
        assert_eq!(through_engine, fresh);
    }
}
