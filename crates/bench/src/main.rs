//! A small CLI that regenerates any table or figure of the MATCH paper on demand.
//!
//! ```text
//! match-bench [--jobs N] [--json] [--backend threads|coop|par] [--workers N] \
//!             [--racks N] [--expect-warm] \
//!             [table1|fig5|...|fig10|mtbf|findings|micro|scale|cachebench|explore|all ...]
//! match-bench cache stats|gc|clear
//! match-bench --replay <artifact.json>
//! ```
//!
//! Results persist across invocations: unless `MATCH_CACHE=off`, every simulated
//! cell is written through to the content-addressed disk store (root
//! `MATCH_CACHE_DIR`, default `target/match-cache`), so a rerun of the same
//! figures in a fresh process performs zero simulations — the `disk` counters on
//! each target's cache line show the reuse. `--expect-warm` turns that into a
//! contract: the process exits nonzero if any figure cell had to be simulated
//! (the CI warm-cache job runs figures twice and passes this on the second run).
//! The `cache` subcommand inspects and maintains the store: `stats` prints the
//! root/entry/byte counts, `gc` runs one mtime-LRU sweep down to
//! `MATCH_CACHE_MAX_MB`, and `clear` removes every entry. The `cachebench`
//! target times a cold-vs-warm Fig. 6 matrix against a private store (with
//! `--json`: written to `BENCH_PR7.json`); like `micro`/`scale` it is not part
//! of `all`.
//!
//! `--backend` selects the scheduler backend simulated jobs run on (equivalent to
//! `MATCH_BACKEND`): `threads` is one OS thread per rank, `coop` multiplexes all
//! ranks of a job as fibers over one OS thread, `par` shards those fibers across a
//! small pool of worker threads (`--workers N`, equivalent to `MATCH_WORKERS`).
//! Figure output is bit-identical across all three and any worker count; `coop`
//! and `par` are the ones that scale to thousands of ranks. `--racks N`
//! regroups the experiment topology's nodes into `N` racks (equivalent to
//! `MATCH_RACKS`; must divide the paper-layout node count). The `scale` target
//! sweeps rank counts per backend (and worker counts for `par`) and records
//! wall-clock and RSS (see [`match_bench::scale`]); like `micro` it is not part
//! of `all`.
//!
//! The `explore` target runs the coverage-guided fault-space explorer (see
//! [`match_explorer`]): per enabled design it searches the failure-trace space
//! under a fixed budget (`MATCH_EXPLORE_BUDGET` traces of `MATCH_EXPLORE_PROCS`
//! ranks × `MATCH_EXPLORE_ITERS` iterations, mutation seed `MATCH_EXPLORE_SEED`,
//! optional on-disk corpus `MATCH_EXPLORE_CORPUS`) and prints the recovery-path
//! coverage matrix (with `--json`: written to `explore.json`). Any property
//! violation is shrunk to a minimal trace and written as a replayable artifact
//! `explore-repro.json`; `--replay <file>` re-runs such an artifact and verifies
//! it reproduces its recorded violation and path labels bit-for-bit.
//! `MATCH_EXPLORE_ASSERT=<substring>` seeds a deliberate violation (asserting the
//! substring unreachable in any path label) — with it set, finding and shrinking
//! that violation is the *success* path, which is how CI drives the whole
//! shrink → replay pipeline. Like `micro`, `explore` is not part of `all`.
//!
//! The `mtbf` target runs the MTBF sweep (efficiency vs. failure rate per design, an
//! MTBF-driven multi-failure arrival process; knobs: `MATCH_MTBF`,
//! `MATCH_MTBF_CRASH_PCT`, `MATCH_MTBF_RACK_PCT`). With `--json`, figure targets also
//! write `<target>.json` in canonical form — byte-identical across runs exactly when
//! the simulated times are bit-identical, which is what the CI determinism job diffs.
//!
//! The matrix is controlled by the `MATCH_PROCS`, `MATCH_SCALE`, `MATCH_APPS`,
//! `MATCH_REPS` and `MATCH_JOBS` environment variables (see the crate documentation);
//! `--jobs N` overrides `MATCH_JOBS`. All targets of one invocation share one
//! [`SuiteEngine`], so overlapping targets (`fig6 fig7 findings`, or `all`) are
//! answered from the result cache instead of re-running their experiments — the
//! engine/cache line printed after each target shows the reuse.
//!
//! The `micro` target runs the data-plane micro benchmark suite (Reed–Solomon
//! encode/decode, differential delta, payload fan-out — each against its kept scalar
//! baseline — plus a fresh-engine fig6 wall-clock). With `--json` the results are also
//! written to `BENCH_PR2.json`. `micro` deliberately uses its own engine so a warm
//! result cache from earlier targets cannot flatter the end-to-end timing.

use std::time::Instant;

use match_bench::{
    figure_to_json, micro, mtbf_options_from_env, mtbf_to_json, options_from_env,
    print_engine_line, print_figure, print_recovery_series, scale, warm,
};
use match_core::figures;
use match_core::findings::Findings;
use match_core::matrix::full_suite_matrix;
use match_core::mtbf::mtbf_sweep_with_engine;
use match_core::persist::{DiskCache, CACHE_MAX_MB_ENV_VAR};
use match_core::table1::table1;
use match_core::SuiteEngine;

/// Every valid target, in the order `all` runs them.
const TARGETS: [&str; 9] = [
    "table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "mtbf", "findings",
];

/// Writes a target's canonical JSON next to the working directory (used by the CI
/// determinism job, which byte-diffs the output of two runs).
fn dump_json(name: &str, json: String) {
    let path = format!("{name}.json");
    if let Err(error) = std::fs::write(&path, json) {
        eprintln!("failed to write {path}: {error}");
        std::process::exit(1);
    }
    println!("[wrote {path}]");
}

fn run_target(
    name: &str,
    engine: &SuiteEngine,
    options: &match_core::matrix::MatrixOptions,
    json: bool,
) {
    let figure = |data: &figures::FigureData| {
        if json {
            dump_json(name, figure_to_json(data));
        }
    };
    let result = match name {
        "table1" => {
            println!(
                "Table I: experimentation configuration\n{}",
                table1().render()
            );
            if json {
                eprintln!("note: --json has no effect on the 'table1' target");
            }
            return;
        }
        "fig5" => {
            let t = Instant::now();
            figures::fig5_with_engine(engine, options).map(|data| {
                print_figure(&data, t);
                figure(&data);
            })
        }
        "fig6" => {
            let t = Instant::now();
            figures::fig6_with_engine(engine, options).map(|data| {
                print_figure(&data, t);
                figure(&data);
            })
        }
        "fig7" => {
            let t = Instant::now();
            figures::fig7_with_engine(engine, options).map(|data| {
                print_recovery_series(&data, t);
                figure(&data);
            })
        }
        "fig8" => {
            let t = Instant::now();
            figures::fig8_with_engine(engine, options).map(|data| {
                print_figure(&data, t);
                figure(&data);
            })
        }
        "fig9" => {
            let t = Instant::now();
            figures::fig9_with_engine(engine, options).map(|data| {
                print_figure(&data, t);
                figure(&data);
            })
        }
        "fig10" => {
            let t = Instant::now();
            figures::fig10_with_engine(engine, options).map(|data| {
                print_recovery_series(&data, t);
                figure(&data);
            })
        }
        "mtbf" => {
            let t = Instant::now();
            let sweep_options = mtbf_options_from_env(options);
            mtbf_sweep_with_engine(engine, &sweep_options).map(|sweep| {
                println!("{}", sweep.render());
                println!(
                    "[swept {} cells in {:.1}s wall-clock]",
                    sweep.rows.len(),
                    t.elapsed().as_secs_f64()
                );
                if json {
                    dump_json(name, mtbf_to_json(&sweep));
                }
            })
        }
        "findings" => {
            let t = Instant::now();
            Findings::compute(engine, options).map(|findings| {
                println!("Section V-C findings (derived from the Fig. 6 matrix)");
                println!("{}", findings.to_table().render());
                println!("[derived in {:.1}s wall-clock]", t.elapsed().as_secs_f64());
                if json {
                    eprintln!("note: --json has no effect on the 'findings' target");
                }
            })
        }
        other => unreachable!("target '{other}' was validated against TARGETS in main"),
    };
    match result {
        Ok(()) => print_engine_line(engine),
        Err(error) => {
            eprintln!("target '{name}' failed: {error}");
            std::process::exit(1);
        }
    }
}

/// Runs the scheduler-backend scale sweep; with `json`, also writes `scale.json`.
fn run_scale(json: bool) {
    let report = scale::run();
    println!("Scheduler-backend scale sweep (synthetic ring + allreduce kernel)");
    print!("{}", report.render());
    if json {
        dump_json("scale", report.to_json());
    }
    println!();
}

/// Runs the cold-vs-warm persistent-cache benchmark; with `json`, also writes
/// `BENCH_PR7.json`.
fn run_cachebench(json: bool, jobs: Option<usize>, options: &match_core::matrix::MatrixOptions) {
    println!("Persistent-cache cold vs. warm (fig6 matrix, private store)");
    match warm::run(jobs, options) {
        Ok(report) => {
            print!("{}", report.render());
            if json {
                let path = "BENCH_PR7.json";
                if let Err(error) = std::fs::write(path, report.to_json()) {
                    eprintln!("failed to write {path}: {error}");
                    std::process::exit(1);
                }
                println!("[wrote {path}]");
            }
            println!();
        }
        Err(error) => {
            eprintln!("target 'cachebench' failed: {error}");
            std::process::exit(1);
        }
    }
}

/// The `match-bench cache stats|gc|clear` maintenance subcommand. Never returns.
fn run_cache_command(args: &[String]) -> ! {
    let sub = match args {
        [one] => one.as_str(),
        _ => {
            eprintln!("usage: match-bench cache stats|gc|clear");
            std::process::exit(2);
        }
    };
    let Some(disk) = DiskCache::global() else {
        println!("persistent cache is disabled (MATCH_CACHE=off)");
        std::process::exit(0);
    };
    match sub {
        "stats" => {
            let usage = disk.usage();
            println!("root:    {}", disk.root().display());
            println!("entries: {}", usage.entries);
            println!("bytes:   {}", usage.bytes);
            match disk.max_bytes() {
                Some(max) => println!("cap:     {max} bytes ({CACHE_MAX_MB_ENV_VAR})"),
                None => println!("cap:     none ({CACHE_MAX_MB_ENV_VAR} unset)"),
            }
        }
        "gc" => match disk.max_bytes() {
            Some(max) => {
                let outcome = disk.gc(max);
                println!(
                    "evicted {} entries ({} bytes); {} entries / {} bytes remain under the \
                     {max}-byte cap",
                    outcome.evicted,
                    outcome.bytes_freed,
                    outcome.remaining.entries,
                    outcome.remaining.bytes,
                );
            }
            None => {
                eprintln!("cache gc needs a cap: set {CACHE_MAX_MB_ENV_VAR}");
                std::process::exit(2);
            }
        },
        "clear" => {
            let removed = disk.clear();
            println!("removed {removed} entries from {}", disk.root().display());
        }
        other => {
            eprintln!("unknown cache subcommand '{other}' (expected stats, gc or clear)");
            std::process::exit(2);
        }
    }
    std::process::exit(0);
}

/// Runs the coverage-guided fault-space explorer; with `json`, also writes
/// `explore.json`. Violations are shrunk and written to `explore-repro.json`.
/// With `MATCH_EXPLORE_ASSERT` set, finding (and shrinking) the seeded
/// assertion violation is the success path; organic violations always fail.
fn run_explore(json: bool) {
    let config = match_explorer::ExploreConfig::from_env();
    let asserting = config.assert_label.is_some();
    let outcome = match_explorer::Explorer::new(config).run();
    print!("{}", outcome.report.render());
    if json {
        dump_json("explore", outcome.report.to_json());
    }
    let mut organic = 0usize;
    let mut asserted = 0usize;
    for violation in &outcome.violations {
        let seeded = violation.property == match_explorer::Property::AssertLabel;
        if seeded {
            asserted += 1;
        } else {
            organic += 1;
        }
        eprintln!(
            "{} violation under {}: {} (minimal repro: {} event(s), {} iterations)",
            violation.property.name(),
            violation.strategy.design_name(),
            violation.detail,
            violation.genome.events.len(),
            violation.genome.iterations,
        );
        // First artifact wins; one repro is what the replay step consumes.
        if organic + asserted == 1 {
            let path = "explore-repro.json";
            if let Err(error) = std::fs::write(path, match_explorer::replay::to_artifact(violation))
            {
                eprintln!("failed to write {path}: {error}");
                std::process::exit(1);
            }
            println!("[wrote {path}]");
        }
    }
    if organic > 0 {
        eprintln!("explore: {organic} organic property violation(s)");
        std::process::exit(1);
    }
    if asserting && asserted == 0 {
        eprintln!(
            "explore: {} was set but no path label matched it",
            match_explorer::ASSERT_ENV_VAR
        );
        std::process::exit(1);
    }
    println!();
}

/// Replays a minimal-repro artifact and verifies the recorded violation and
/// path labels reproduce bit-for-bit. Never returns.
fn run_replay(path: &str) -> ! {
    let artifact = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("failed to read {path}: {error}");
            std::process::exit(2);
        }
    };
    match match_explorer::replay::replay(&artifact) {
        Ok(outcome) => {
            println!(
                "replayed {} under {}: reproduced={} labels_match={} (paths: {})",
                outcome.property.name(),
                outcome.design,
                outcome.reproduced,
                outcome.labels_match,
                outcome.labels.join(" "),
            );
            if outcome.verified() {
                println!("[replay verified]");
                std::process::exit(0);
            }
            eprintln!(
                "replay mismatch: expected paths {}",
                outcome.expected_labels.join(" ")
            );
            std::process::exit(1);
        }
        Err(error) => {
            eprintln!("bad artifact {path}: {error}");
            std::process::exit(2);
        }
    }
}

/// Runs the micro benchmark suite; with `json`, also writes `BENCH_PR2.json`.
fn run_micro(json: bool, jobs: Option<usize>) {
    let report = micro::run(true, jobs);
    print!("{}", report.render());
    if json {
        let path = "BENCH_PR2.json";
        if let Err(error) = std::fs::write(path, report.to_json()) {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
        println!("[wrote {path}]");
    }
    println!();
}

fn main() {
    let mut jobs: Option<usize> = None;
    let mut json = false;
    let mut expect_warm = false;
    let mut replay: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--expect-warm" => expect_warm = true,
            "--replay" => {
                let value = args.next().unwrap_or_default();
                if value.is_empty() {
                    eprintln!("--replay needs an artifact path");
                    std::process::exit(2);
                }
                replay = Some(value);
            }
            "--jobs" | "-j" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => jobs = Some(n),
                    _ => {
                        eprintln!("--jobs needs a positive integer, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            flag if flag.starts_with("--jobs=") => match flag["--jobs=".len()..].parse::<usize>() {
                Ok(n) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer, got '{flag}'");
                    std::process::exit(2);
                }
            },
            "--backend" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<match_core::mpisim::SchedBackend>() {
                    // Simulated jobs read the backend from the environment at
                    // cluster-configuration time; setting it here (before any job
                    // starts, single-threaded) routes every target through it.
                    Ok(b) => std::env::set_var(match_core::mpisim::BACKEND_ENV_VAR, b.name()),
                    Err(error) => {
                        eprintln!("--backend: {error} (expected threads|coop|par)");
                        std::process::exit(2);
                    }
                }
            }
            "--workers" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<usize>() {
                    // Like --backend: resolved from the environment at
                    // cluster-configuration time, set here before any job starts.
                    Ok(n) if n > 0 => {
                        std::env::set_var(match_core::mpisim::WORKERS_ENV_VAR, n.to_string())
                    }
                    _ => {
                        eprintln!("--workers needs a positive integer, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            "--racks" => {
                let value = args.next().unwrap_or_default();
                match value.parse::<usize>() {
                    Ok(n) if n > 0 => {
                        std::env::set_var(match_core::runner::RACKS_ENV_VAR, n.to_string())
                    }
                    _ => {
                        eprintln!("--racks needs a positive integer, got '{value}'");
                        std::process::exit(2);
                    }
                }
            }
            target => targets.push(target.to_string()),
        }
    }
    if let Some(path) = replay {
        run_replay(&path);
    }
    if targets.first().is_some_and(|t| t == "cache") {
        run_cache_command(&targets[1..]);
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let engine = jobs.map(SuiteEngine::with_jobs).unwrap_or_default();
    let options = options_from_env();

    let expanded: Vec<&str> = targets
        .iter()
        .flat_map(|t| {
            if t == "all" {
                TARGETS.to_vec()
            } else {
                vec![t.as_str()]
            }
        })
        .collect();

    // Reject typos before any simulation runs — a bad name at the end of the list
    // must not surface only after minutes of matrix work.
    for name in &expanded {
        if !TARGETS.contains(name) && !["micro", "scale", "cachebench", "explore"].contains(name) {
            eprintln!(
                "unknown target '{name}' (expected table1, fig5..fig10, mtbf, findings, micro, \
                 scale, cachebench, explore, all; or the 'cache stats|gc|clear' subcommand)"
            );
            std::process::exit(2);
        }
    }

    // When the whole evaluation is requested, schedule the full experiment union as
    // one wave first: it saturates the worker pool once, and every figure below then
    // renders from cache.
    if targets.iter().any(|t| t == "all") {
        let t = Instant::now();
        let matrix = full_suite_matrix(&options);
        if let Err(error) = engine.run_matrix(&matrix) {
            eprintln!("experiment matrix failed: {error}");
            std::process::exit(1);
        }
        println!(
            "[ran the full {}-cell matrix in {:.1}s wall-clock with {} job(s)]\n",
            matrix.len(),
            t.elapsed().as_secs_f64(),
            engine.jobs()
        );
    }

    for name in expanded {
        if name == "micro" {
            run_micro(json, jobs);
        } else if name == "scale" {
            run_scale(json);
        } else if name == "cachebench" {
            run_cachebench(json, jobs, &options);
        } else if name == "explore" {
            run_explore(json);
        } else {
            run_target(name, &engine, &options, json);
        }
    }

    // The warm-start contract check: with a populated cache directory, a rerun
    // must have answered every figure cell without simulating (micro/scale use
    // private engines and are exempt by design).
    if expect_warm {
        let stats = engine.cache_stats();
        if stats.disk_misses > 0 {
            eprintln!(
                "--expect-warm: {} cell(s) were simulated instead of recalled \
                 (cache: {stats})",
                stats.disk_misses
            );
            std::process::exit(1);
        }
        println!("[warm start confirmed: every cell recalled, zero simulations]");
    }
}
