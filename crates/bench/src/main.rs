//! A small CLI that regenerates any table or figure of the MATCH paper on demand.
//!
//! ```text
//! match-bench table1|fig5|fig6|fig7|fig8|fig9|fig10|findings|all
//! ```
//!
//! The matrix is controlled by the `MATCH_PROCS`, `MATCH_SCALE`, `MATCH_APPS` and
//! `MATCH_REPS` environment variables (see the crate documentation).

use std::time::Instant;

use match_bench::{options_from_env, print_figure, print_recovery_series};
use match_core::figures;
use match_core::findings::Findings;
use match_core::table1::table1;

fn run_target(name: &str, options: &match_core::matrix::MatrixOptions) {
    match name {
        "table1" => println!("Table I: experimentation configuration\n{}", table1().render()),
        "fig5" => {
            let t = Instant::now();
            print_figure(&figures::fig5_scaling_no_failure(options), t);
        }
        "fig6" => {
            let t = Instant::now();
            print_figure(&figures::fig6_scaling_with_failure(options), t);
        }
        "fig7" => {
            let t = Instant::now();
            print_recovery_series(&figures::fig7_recovery_scaling(options), t);
        }
        "fig8" => {
            let t = Instant::now();
            print_figure(&figures::fig8_input_no_failure(options), t);
        }
        "fig9" => {
            let t = Instant::now();
            print_figure(&figures::fig9_input_with_failure(options), t);
        }
        "fig10" => {
            let t = Instant::now();
            print_recovery_series(&figures::fig10_recovery_input(options), t);
        }
        "findings" => {
            let t = Instant::now();
            let data = figures::fig6_scaling_with_failure(options);
            let findings = Findings::from_figure(&data);
            println!("Section V-C findings (derived from the Fig. 6 matrix)");
            println!("{}", findings.to_table().render());
            println!("[derived in {:.1}s wall-clock]\n", t.elapsed().as_secs_f64());
        }
        other => eprintln!("unknown target '{other}' (expected table1, fig5..fig10, findings, all)"),
    }
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let options = options_from_env();
    if what == "all" {
        for name in ["table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "findings"] {
            run_target(name, &options);
        }
    } else {
        run_target(&what, &options);
    }
}
