//! The data-plane micro benchmark suite (`match-bench micro [--json]`).
//!
//! Times the hot kernels of the checkpoint data plane — Reed–Solomon encode/decode,
//! differential-delta computation and shared-payload fan-out — each against the scalar
//! / owned-copy baseline implementation that is kept in-tree as the reference oracle,
//! plus the wall-clock of regenerating the Fig. 6 matrix end to end. With `--json` the
//! results are written to `BENCH_PR2.json` so the repository carries a measured
//! performance trajectory.
//!
//! Knobs (environment):
//!
//! * `MATCH_MICRO_BUDGET_MS` — per-timer measurement budget in milliseconds
//!   (default 300; CI smoke uses a small value),
//! * `MATCH_FIG6_BASELINE` — a previously measured fig6 wall-clock in seconds,
//!   recorded alongside the fresh measurement as the before/after pair,
//! * the usual `MATCH_PROCS` / `MATCH_SCALE` / `MATCH_APPS` / `MATCH_REPS` /
//!   `MATCH_JOBS` variables controlling the fig6 matrix (see [`crate`]).

use std::hint::black_box;
use std::time::{Duration, Instant};

use match_core::fti::{diff, rs_code};
use match_core::mpisim::Payload;
use match_core::{figures, SuiteEngine};

use crate::options_from_env;

/// One timed kernel: the fast data-plane implementation next to its kept baseline.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel identifier (stable across PRs, used as the JSON key).
    pub name: String,
    /// Nanoseconds per operation of the fast path (minimum over samples).
    pub ns_per_op: f64,
    /// Nanoseconds per operation of the scalar / owned-copy baseline.
    pub baseline_ns_per_op: f64,
}

impl KernelTiming {
    /// Baseline time divided by fast time.
    pub fn speedup(&self) -> f64 {
        if self.ns_per_op > 0.0 {
            self.baseline_ns_per_op / self.ns_per_op
        } else {
            0.0
        }
    }
}

/// Wall-clock of regenerating the Fig. 6 matrix with a fresh engine (no cache reuse).
#[derive(Debug, Clone)]
pub struct Fig6Timing {
    /// Seconds of wall-clock for the full matrix.
    pub wall_clock_s: f64,
    /// Number of figure rows regenerated.
    pub rows: usize,
    /// A previously measured wall-clock (seconds) passed in via `MATCH_FIG6_BASELINE`,
    /// recorded as the "before" of the before/after pair.
    pub baseline_wall_clock_s: Option<f64>,
}

/// The full micro-suite result.
#[derive(Debug, Clone)]
pub struct MicroReport {
    /// Per-kernel timings, fast path vs baseline.
    pub kernels: Vec<KernelTiming>,
    /// End-to-end fig6 regeneration timing (absent if the matrix failed to run).
    pub fig6: Option<Fig6Timing>,
}

fn budget() -> Duration {
    let ms = std::env::var("MATCH_MICRO_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Times `f` and returns the minimum nanoseconds per call (the most noise-resistant
/// statistic on a shared machine): warm up for a sixth of the budget, pick a batch
/// size targeting ~1 ms per sample, then sample until the budget is spent.
pub fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    let budget = budget();
    let warmup = budget / 6;
    let warm_start = Instant::now();
    let mut warm_iters: u32 = 0;
    while warm_start.elapsed() < warmup || warm_iters == 0 {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
    let batch = ((1e-3 / per_iter.max(1e-9)) as u32).clamp(1, 1_000_000);

    let mut min = f64::INFINITY;
    let run_start = Instant::now();
    while run_start.elapsed() < budget {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        min = min.min(t.elapsed().as_secs_f64() / batch as f64);
    }
    min * 1e9
}

/// A deterministic pseudo-random payload (every byte value occurs, no field structure).
fn test_data(len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8)
        .collect()
}

/// Runs the four data-plane kernel timers (1 MiB payloads, the acceptance size).
pub fn run_kernels() -> Vec<KernelTiming> {
    let mut out = Vec::new();
    let data = test_data(1 << 20);
    let (k, m) = (4usize, 2usize);

    // Reed–Solomon encode as the L3 write path runs it: a zero-copy shared payload
    // through the vectorized mul-table kernel, vs the per-byte gf_mul implementation
    // the data plane used before (which also owned and copied its shards).
    let payload: Payload = data.clone().into();
    out.push(KernelTiming {
        name: format!("rs_encode_1MiB_k{k}m{m}"),
        ns_per_op: time_ns(|| {
            black_box(rs_code::encode_payload(black_box(&payload), k, m).unwrap());
        }),
        baseline_ns_per_op: time_ns(|| {
            black_box(rs_code::encode_scalar(black_box(&data), k, m).unwrap());
        }),
    });

    // Reed–Solomon decode with two erased *data* shards (forces the general
    // matrix-inversion path on both implementations).
    let encoded = rs_code::encode(&data, k, m).unwrap();
    let mut shards: Vec<Option<Payload>> = encoded.shards.iter().cloned().map(Some).collect();
    shards[0] = None;
    shards[1] = None;
    out.push(KernelTiming {
        name: format!("rs_decode_1MiB_k{k}m{m}_2erasures"),
        ns_per_op: time_ns(|| {
            black_box(rs_code::decode(black_box(&shards), k, m, encoded.original_len).unwrap());
        }),
        baseline_ns_per_op: time_ns(|| {
            black_box(
                rs_code::decode_scalar(black_box(&shards), k, m, encoded.original_len).unwrap(),
            );
        }),
    });

    // Differential delta of a sparsely changed 1 MiB payload: word-wide hashing with
    // cached base hashes vs byte-hashing both payloads and copying changed blocks.
    let base = test_data(1 << 20);
    let mut changed = base.clone();
    changed[12_345] ^= 0xFF;
    changed[999_999] ^= 0xFF;
    let block = 4096;
    let base_hashes = diff::block_hashes(&base, block);
    let new_payload: Payload = changed.clone().into();
    out.push(KernelTiming {
        name: "diff_delta_1MiB_sparse".into(),
        ns_per_op: time_ns(|| {
            black_box(diff::compute_delta_cached(
                black_box(&base),
                &base_hashes,
                &new_payload,
                block,
            ));
        }),
        baseline_ns_per_op: time_ns(|| {
            black_box(diff::compute_delta_owned(black_box(&base), &changed, block));
        }),
    });

    // Payload fan-out: assemble a checkpoint payload from four objects and hand three
    // redundancy blobs a reference each (the L2/L4 write pattern) — shared-buffer
    // views vs owned `Vec` clones.
    let objects: Vec<Vec<u8>> = (0..4).map(|_| test_data(1 << 18)).collect();
    out.push(KernelTiming {
        name: "payload_roundtrip_1MiB_4objs_3blobs".into(),
        ns_per_op: time_ns(|| {
            let payload = Payload::concat(black_box(&objects));
            let blobs = [payload.clone(), payload.clone(), payload.clone()];
            black_box(payload.slice(0..1 << 19));
            black_box(blobs);
        }),
        baseline_ns_per_op: time_ns(|| {
            let payload: Vec<u8> = black_box(&objects).concat();
            let blobs = [payload.clone(), payload.clone(), payload.clone()];
            black_box(payload[..1 << 19].to_vec());
            black_box(blobs);
        }),
    });

    out
}

/// Regenerates the Fig. 6 matrix on a fresh engine (no warm cache) and times it.
/// `jobs` overrides the engine's concurrency (the CLI's `--jobs` flag); `None` falls
/// back to `MATCH_JOBS` / available parallelism.
pub fn run_fig6(jobs: Option<usize>) -> Option<Fig6Timing> {
    let engine = jobs.map(SuiteEngine::with_jobs).unwrap_or_default();
    let options = options_from_env();
    let t = Instant::now();
    match figures::fig6_with_engine(&engine, &options) {
        Ok(data) => Some(Fig6Timing {
            wall_clock_s: t.elapsed().as_secs_f64(),
            rows: data.rows.len(),
            baseline_wall_clock_s: std::env::var("MATCH_FIG6_BASELINE")
                .ok()
                .and_then(|s| s.parse().ok()),
        }),
        Err(error) => {
            eprintln!("fig6 smoke matrix failed: {error}");
            None
        }
    }
}

/// Runs the whole micro suite. `include_fig6` controls whether the (comparatively
/// expensive) end-to-end matrix timing runs too; `jobs` is forwarded to its engine.
pub fn run(include_fig6: bool, jobs: Option<usize>) -> MicroReport {
    MicroReport {
        kernels: run_kernels(),
        fig6: if include_fig6 { run_fig6(jobs) } else { None },
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".into()
    }
}

impl MicroReport {
    /// Renders the report as a human-readable text block.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "data-plane micro kernels (min ns/op; baseline = scalar/owned reference)\n",
        );
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<38} fast {:>12.0} ns  baseline {:>12.0} ns  speedup {:>6.2}x\n",
                k.name,
                k.ns_per_op,
                k.baseline_ns_per_op,
                k.speedup()
            ));
        }
        if let Some(f) = &self.fig6 {
            out.push_str(&format!(
                "fig6 matrix: {} rows in {:.1}s wall-clock{}\n",
                f.rows,
                f.wall_clock_s,
                match f.baseline_wall_clock_s {
                    Some(b) => format!(" (baseline {b:.1}s)"),
                    None => String::new(),
                }
            ));
        }
        out
    }

    /// Serializes the report to the `BENCH_PR2.json` schema (hand-rolled: the build is
    /// offline, so no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"match-bench-micro-v1\",\n  \"pr\": 2,\n");
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"ns_per_op\": {}, \"baseline_ns_per_op\": {}, \"speedup\": {:.2}}}{}\n",
                k.name,
                json_f64(k.ns_per_op),
                json_f64(k.baseline_ns_per_op),
                k.speedup(),
                if i + 1 < self.kernels.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        match &self.fig6 {
            Some(f) => out.push_str(&format!(
                "  \"fig6_smoke\": {{\"rows\": {}, \"wall_clock_s\": {:.2}, \"baseline_wall_clock_s\": {}}}\n",
                f.rows,
                f.wall_clock_s,
                f.baseline_wall_clock_s
                    .map(|b| format!("{b:.2}"))
                    .unwrap_or_else(|| "null".into()),
            )),
            None => out.push_str("  \"fig6_smoke\": null\n"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_enough() {
        let report = MicroReport {
            kernels: vec![KernelTiming {
                name: "k".into(),
                ns_per_op: 10.0,
                baseline_ns_per_op: 50.0,
            }],
            fig6: Some(Fig6Timing {
                wall_clock_s: 1.5,
                rows: 6,
                baseline_wall_clock_s: None,
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"match-bench-micro-v1\""));
        assert!(json.contains("\"speedup\": 5.00"));
        assert!(json.contains("\"baseline_wall_clock_s\": null"));
        // Balanced braces/brackets — a cheap structural sanity check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(report.kernels[0].speedup(), 5.0);
    }

    #[test]
    fn render_mentions_every_kernel() {
        let report = MicroReport {
            kernels: vec![KernelTiming {
                name: "rs_encode_x".into(),
                ns_per_op: 1.0,
                baseline_ns_per_op: 2.0,
            }],
            fig6: None,
        };
        assert!(report.render().contains("rs_encode_x"));
    }
}
