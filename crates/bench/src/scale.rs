//! The `scale` target: how far each scheduler backend stretches in rank count.
//!
//! Runs a fixed synthetic communication kernel — per iteration: a little compute, a
//! ring halo exchange (`sendrecv`) and a world `allreduce` — at a ladder of rank
//! counts on each backend, recording host wall-clock time and process RSS. The
//! workload is communication-dominated on purpose: it stresses exactly the part the
//! backends implement differently (blocking, wakeups, scheduling), not the proxy
//! applications' numerics.
//!
//! The simulated *virtual* time of every cell is also recorded and cross-checked:
//! backends must agree bit-for-bit, so a mismatch is reported loudly (it would mean
//! the cooperative scheduler broke the virtual-time contract, not that the host was
//! slow).
//!
//! Environment knobs:
//!
//! * `MATCH_SCALE_RANKS` — comma-separated rank ladder (default `512,1024,2048,4096`),
//! * `MATCH_SCALE_BACKENDS` — subset of `threads,coop,par` (default all three),
//! * `MATCH_SCALE_WORKERS` — comma-separated worker counts swept for the `par`
//!   backend (default `1,2,4,8`; `threads` and `coop` have no worker dimension and
//!   run one cell per rank count),
//! * `MATCH_SCALE_ITERS` — iterations of the kernel per run (default 5),
//! * `MATCH_SCALE_THREADS_MAX` — largest rank count attempted on the thread backend
//!   (default 2048; thread-per-rank jobs beyond this tend to exhaust host threads or
//!   take unreasonably long, which is the point the target demonstrates),
//! * `MATCH_SCALE_STACK_KB` — per-rank stack in KiB (default 256; all backends).

use std::time::Instant;

use match_core::mpisim::{Cluster, ClusterConfig, SchedBackend};
use match_core::table::TextTable;

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// The scheduler backend.
    pub backend: SchedBackend,
    /// Worker threads used by the `par` backend for this cell; `1` for the backends
    /// without a worker dimension (`threads`, `coop`).
    pub workers: usize,
    /// Number of simulated ranks.
    pub nranks: usize,
    /// Host wall-clock seconds for the whole job, or `None` when the cell was
    /// skipped or failed.
    pub wall_secs: Option<f64>,
    /// Simulated virtual seconds (`RunOutcome::max_time`); identical across backends
    /// by construction.
    pub virt_secs: Option<f64>,
    /// Process resident set size after the run, in MiB (`VmRSS`).
    pub rss_mib: Option<f64>,
    /// Why the cell has no measurement (skipped by the thread cap, or the run
    /// failed), when it has none.
    pub note: Option<String>,
}

/// The whole sweep.
#[derive(Debug, Clone, Default)]
pub struct ScaleReport {
    /// All cells, in `(backend, nranks)` sweep order.
    pub rows: Vec<ScaleRow>,
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn env_list(var: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(var)
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .filter(|&p| p > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn backends_from_env() -> Vec<SchedBackend> {
    match std::env::var("MATCH_SCALE_BACKENDS") {
        Err(_) => SchedBackend::ALL.to_vec(),
        Ok(s) => {
            let picked: Vec<SchedBackend> = SchedBackend::ALL
                .into_iter()
                .filter(|b| {
                    s.split(',')
                        .any(|name| name.trim().eq_ignore_ascii_case(b.name()))
                })
                .collect();
            if picked.is_empty() {
                SchedBackend::ALL.to_vec()
            } else {
                picked
            }
        }
    }
}

/// Reads a `VmRSS`-style line (kB) from `/proc/self/status`; `None` off Linux.
fn proc_status_mib(field: &str) -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// The synthetic kernel: `iters` rounds of compute + ring halo exchange + allreduce.
/// Returns the job's simulated completion time, or the panic note when the backend
/// could not run the job at all (e.g. thread exhaustion).
fn run_kernel(
    backend: SchedBackend,
    workers: usize,
    nranks: usize,
    iters: u64,
    stack: usize,
) -> Result<f64, String> {
    let result = std::panic::catch_unwind(|| {
        let cluster = Cluster::new(
            ClusterConfig::with_ranks(nranks)
                .backend(backend)
                .workers(workers)
                .stack_size(stack),
        );
        let outcome = cluster.run(move |ctx| {
            let world = ctx.world();
            let n = world.size();
            let next = (world.rank() + 1) % n;
            let prev = (world.rank() + n - 1) % n;
            let halo = vec![ctx.rank() as f64; 8];
            let mut acc = 0.0f64;
            for _ in 0..iters {
                ctx.compute(1e4);
                let got = ctx.sendrecv_f64(&world, next, &halo, prev, 11)?;
                acc += got[0];
                acc += ctx.allreduce_sum_f64(&world, 1.0)?;
            }
            Ok(acc)
        });
        assert!(outcome.all_ok(), "{:?}", outcome.errors());
        outcome.max_time().as_secs()
    });
    result.map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic".to_string());
        let first = msg.lines().next().unwrap_or("panic");
        format!("failed: {first}")
    })
}

/// Runs the sweep (see the module docs), printing one progress line per cell.
pub fn run() -> ScaleReport {
    let ranks = env_list("MATCH_SCALE_RANKS", &[512, 1024, 2048, 4096]);
    let backends = backends_from_env();
    let worker_ladder = env_list("MATCH_SCALE_WORKERS", &[1, 2, 4, 8]);
    let iters = env_usize("MATCH_SCALE_ITERS", 5) as u64;
    let threads_max = env_usize("MATCH_SCALE_THREADS_MAX", 2048);
    let stack = env_usize("MATCH_SCALE_STACK_KB", 256) * 1024;

    // `par` is swept over the worker ladder; the other backends have no worker
    // dimension and get one cell per rank count.
    let mut cells: Vec<(SchedBackend, usize)> = Vec::new();
    for &backend in &backends {
        if backend == SchedBackend::Par {
            cells.extend(worker_ladder.iter().map(|&w| (backend, w)));
        } else {
            cells.push((backend, 1));
        }
    }

    let mut report = ScaleReport::default();
    let mut virt_by_ranks: std::collections::BTreeMap<usize, f64> = Default::default();
    for &(backend, workers) in &cells {
        let label = if backend == SchedBackend::Par {
            format!("{backend}[w={workers}]")
        } else {
            backend.to_string()
        };
        for &nranks in &ranks {
            if backend == SchedBackend::Threads && nranks > threads_max {
                println!(
                    "[scale] {label}/{nranks}: skipped (over MATCH_SCALE_THREADS_MAX={threads_max}; \
                     thread-per-rank is the ceiling this target demonstrates)"
                );
                report.rows.push(ScaleRow {
                    backend,
                    workers,
                    nranks,
                    wall_secs: None,
                    virt_secs: None,
                    rss_mib: None,
                    note: Some(format!("skipped (> threads cap {threads_max})")),
                });
                continue;
            }
            let started = Instant::now();
            match run_kernel(backend, workers, nranks, iters, stack) {
                Ok(virt) => {
                    let wall = started.elapsed().as_secs_f64();
                    let rss = proc_status_mib("VmRSS:");
                    match virt_by_ranks.get(&nranks) {
                        None => {
                            virt_by_ranks.insert(nranks, virt);
                        }
                        Some(&other) if other.to_bits() != virt.to_bits() => {
                            eprintln!(
                                "[scale] VIRTUAL-TIME MISMATCH at {nranks} ranks: {label} says \
                                 {virt}, another backend said {other} — scheduler contract broken"
                            );
                        }
                        Some(_) => {}
                    }
                    println!(
                        "[scale] {label}/{nranks}: {wall:.2}s wall, {virt:.3}s simulated{}",
                        rss.map(|r| format!(", {r:.0} MiB RSS")).unwrap_or_default()
                    );
                    report.rows.push(ScaleRow {
                        backend,
                        workers,
                        nranks,
                        wall_secs: Some(wall),
                        virt_secs: Some(virt),
                        rss_mib: rss,
                        note: None,
                    });
                }
                Err(note) => {
                    println!("[scale] {label}/{nranks}: {note}");
                    report.rows.push(ScaleRow {
                        backend,
                        workers,
                        nranks,
                        wall_secs: None,
                        virt_secs: None,
                        rss_mib: None,
                        note: Some(note),
                    });
                }
            }
        }
    }
    report
}

impl ScaleReport {
    /// Renders the sweep as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Backend",
            "Workers",
            "Ranks",
            "Wall (s)",
            "Simulated (s)",
            "RSS (MiB)",
            "Note",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.backend.to_string(),
                row.workers.to_string(),
                row.nranks.to_string(),
                row.wall_secs.map(|w| format!("{w:.2}")).unwrap_or_default(),
                row.virt_secs.map(|v| format!("{v:.3}")).unwrap_or_default(),
                row.rss_mib.map(|r| format!("{r:.0}")).unwrap_or_default(),
                row.note.clone().unwrap_or_default(),
            ]);
        }
        table.render()
    }

    /// Serializes the sweep as canonical JSON (floats in shortest-round-trip form).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"match-bench-scale-v2\",\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let field = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or("null".into());
            out.push_str(&format!(
                "    {{\"backend\": \"{}\", \"workers\": {}, \"nranks\": {}, \"wall_secs\": {}, \
                 \"virt_secs\": {}, \"rss_mib\": {}, \"note\": \"{}\"}}{}\n",
                row.backend.name(),
                row.workers,
                row.nranks,
                field(row.wall_secs),
                field(row.virt_secs),
                field(row.rss_mib),
                json_escape(row.note.as_deref().unwrap_or_default()),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal (the `note` field can
/// carry arbitrary panic text; Rust's `{:?}` escapes like `\u{1b}` are not valid
/// JSON, so this does it by hand).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_agrees_across_backends_at_smoke_scale() {
        let a = run_kernel(SchedBackend::Threads, 1, 16, 3, 256 * 1024).unwrap();
        let b = run_kernel(SchedBackend::Coop, 1, 16, 3, 256 * 1024).unwrap();
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "virtual time must be backend-free"
        );
        for workers in [1, 2, 4] {
            let c = run_kernel(SchedBackend::Par, workers, 16, 3, 256 * 1024).unwrap();
            assert_eq!(
                a.to_bits(),
                c.to_bits(),
                "virtual time must not depend on par worker count ({workers})"
            );
        }
        assert!(a > 0.0);
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = ScaleReport {
            rows: vec![ScaleRow {
                backend: SchedBackend::Par,
                workers: 4,
                nranks: 64,
                wall_secs: Some(0.5),
                virt_secs: Some(1.25),
                rss_mib: Some(100.0),
                note: None,
            }],
        };
        let text = report.render();
        assert!(text.contains("par"));
        assert!(text.contains("64"));
        let json = report.to_json();
        assert!(json.contains("match-bench-scale-v2"));
        assert!(json.contains("\"nranks\": 64"));
        assert!(json.contains("\"workers\": 4"));
    }

    #[test]
    fn json_escape_produces_valid_json_escapes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak"), "line\\nbreak");
        // Control characters use JSON's \uXXXX form, not Rust's \u{XX}.
        assert_eq!(json_escape("\u{1b}[31m"), "\\u001b[31m");
    }
}
