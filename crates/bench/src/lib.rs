//! Shared helpers for the MATCH-RS benchmark harnesses.
//!
//! Every figure/table of the paper has a `harness = false` bench target that prints the
//! regenerated rows as a text table of *virtual* time (the simulator's deterministic
//! clock). The helpers here read the environment knobs shared by all of them:
//!
//! * `MATCH_PROCS` — comma-separated process-count ladder (default `4,8,16,32`;
//!   the paper uses `64,128,256,512`),
//! * `MATCH_SCALE` — `smoke`, `bench` or `paper` input scaling (default `smoke`),
//! * `MATCH_APPS` — comma-separated subset of applications (default: all six),
//! * `MATCH_REPS` — repetitions per configuration (default 1; the paper uses 5),
//! * `MATCH_JOBS` — number of experiments run concurrently by the
//!   [`SuiteEngine`] (default: the host's available parallelism; the `match-bench`
//!   CLI also accepts `--jobs N`),
//! * `MATCH_BACKEND` — the scheduler backend simulated jobs run on (`threads` or
//!   `coop`; results are bit-identical, only host scaling differs; the CLI also
//!   accepts `--backend NAME`),
//! * `MATCH_RACKS` — rack-count override for the experiment topology (the `nracks`
//!   sweep knob; must divide the paper-layout node count; the CLI also accepts
//!   `--racks N`),
//! * `MATCH_CACHE` / `MATCH_CACHE_DIR` / `MATCH_CACHE_MAX_MB` — the persistent
//!   result cache: `off` disables the disk layer, the dir overrides its root
//!   (default `target/match-cache`), and the cap enables mtime-LRU garbage
//!   collection (see `match_core::persist`; the CLI's `cache stats|gc|clear`
//!   subcommand inspects and maintains the store).

pub mod micro;
pub mod scale;
pub mod warm;

use match_core::matrix::MatrixOptions;
use match_core::mtbf::MtbfSweep;
use match_core::proxies::registry::ExecutionScale;
use match_core::proxies::ProxyKind;
use match_core::{FigureData, MtbfSweepOptions, SuiteEngine, SuiteOptions};

/// Reads the benchmark matrix options from the environment (see the module docs).
pub fn options_from_env() -> MatrixOptions {
    let procs: Vec<usize> = std::env::var("MATCH_PROCS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .filter(|&p| p > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4, 8, 16, 32]);

    let scale = match std::env::var("MATCH_SCALE").as_deref() {
        Ok("paper") => ExecutionScale::paper(),
        Ok("bench") => ExecutionScale::bench(),
        _ => ExecutionScale::smoke(),
    };

    let apps: Vec<ProxyKind> = std::env::var("MATCH_APPS")
        .ok()
        .map(|s| {
            ProxyKind::ALL
                .into_iter()
                .filter(|k| {
                    s.split(',')
                        .any(|name| name.trim().eq_ignore_ascii_case(k.name()))
                })
                .collect()
        })
        .filter(|v: &Vec<ProxyKind>| !v.is_empty())
        .unwrap_or_else(|| ProxyKind::ALL.to_vec());

    let repetitions: u32 = std::env::var("MATCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let default_procs = *procs.first().expect("non-empty process ladder");
    MatrixOptions {
        process_counts: procs,
        default_procs,
        apps,
        suite: SuiteOptions {
            scale,
            repetitions,
            seed: 2020,
        },
    }
}

/// Reads the MTBF-sweep options from the environment: the matrix options plus
/// `MATCH_MTBF` (comma-separated node-MTBF ladder in iterations; the default scales
/// with the execution scale's iteration cap) and `MATCH_MTBF_CRASH_PCT` /
/// `MATCH_MTBF_RACK_PCT` (correlated node-crash and rack-cascade percentages,
/// default 0). The rack percentage is real rack correlation over the topology's
/// rack dimension: the cascade victim is another node of the crashed node's rack,
/// and sweeps with cascades checkpoint at the erasure-coded L3 level.
pub fn mtbf_options_from_env(options: &MatrixOptions) -> MtbfSweepOptions {
    let mut sweep = MtbfSweepOptions::from_matrix(options);
    if let Some(ladder) = std::env::var("MATCH_MTBF").ok().map(|s| {
        s.split(',')
            .filter_map(|p| p.trim().parse().ok())
            .filter(|&p| p > 0)
            .collect::<Vec<u32>>()
    }) {
        if !ladder.is_empty() {
            sweep = sweep.with_ladder(ladder);
        }
    }
    let pct = |var: &str| match std::env::var(var) {
        Err(_) => 0u8,
        // Parse wide and clamp so "150" means 100, and complain loudly about
        // unparseable values instead of silently running an uncorrelated sweep.
        Ok(s) => match s.trim().parse::<u32>() {
            Ok(v) => v.min(100) as u8,
            Err(_) => {
                eprintln!("warning: {var}='{s}' is not a percentage (0-100); using 0");
                0
            }
        },
    };
    sweep.with_correlation(pct("MATCH_MTBF_CRASH_PCT"), pct("MATCH_MTBF_RACK_PCT"))
}

/// Serializes a figure into canonical JSON. Floats are rendered with Rust's
/// shortest-round-trip formatting, so two outputs are byte-identical exactly when the
/// underlying values are bit-identical — the property the determinism CI job diffs.
pub fn figure_to_json(data: &FigureData) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"title\": {:?},\n", data.title));
    out.push_str(&format!("  \"with_failure\": {},\n", data.with_failure));
    out.push_str("  \"rows\": [\n");
    for (i, row) in data.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": {:?}, \"group\": {:?}, \"design\": {:?}, \"application\": {}, \"checkpoint_write\": {}, \"recovery\": {}}}{}\n",
            row.app.name(),
            row.group,
            row.design,
            row.application,
            row.checkpoint_write,
            row.recovery,
            if i + 1 < data.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes an MTBF sweep into canonical JSON (same float convention as
/// [`figure_to_json`]).
pub fn mtbf_to_json(sweep: &MtbfSweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"title\": {:?},\n", sweep.title));
    out.push_str("  \"rows\": [\n");
    for (i, row) in sweep.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": {:?}, \"node_mtbf_iterations\": {}, \"failures\": {}, \"restarts\": {}, \"application\": {}, \"checkpoint_write\": {}, \"recovery\": {}, \"total\": {}, \"efficiency\": {}}}{}\n",
            row.design,
            row.node_mtbf_iterations,
            row.failures,
            row.restarts,
            row.application,
            row.checkpoint_write,
            row.recovery,
            row.total,
            row.efficiency,
            if i + 1 < sweep.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a figure with a standard banner, reporting the wall-clock time the
/// regeneration took.
pub fn print_figure(data: &FigureData, started: std::time::Instant) {
    println!("{}", data.render());
    println!(
        "[regenerated {} rows in {:.1}s wall-clock; times above are simulated seconds]",
        data.rows.len(),
        started.elapsed().as_secs_f64()
    );
}

/// Prints only the recovery-time series of a figure (Figs. 7 and 10 report recovery
/// time alone).
pub fn print_recovery_series(data: &FigureData, started: std::time::Instant) {
    let mut table =
        match_core::table::TextTable::new(vec!["Application", "Group", "Design", "Recovery (s)"]);
    for row in &data.rows {
        table.add_row(vec![
            row.app.name().to_string(),
            row.group.clone(),
            row.design.clone(),
            format!("{:.3}", row.recovery),
        ]);
    }
    println!("{}", data.title);
    println!("{}", table.render());
    println!(
        "[regenerated {} rows in {:.1}s wall-clock]",
        data.rows.len(),
        started.elapsed().as_secs_f64()
    );
}

/// Prints the engine's scheduling and cache counters — the line every harness emits
/// after its tables so cache reuse (e.g. `fig6` answering `findings` for free) is
/// visible in the output.
pub fn print_engine_line(engine: &SuiteEngine) {
    println!(
        "[engine: jobs={}; cache: {}]\n",
        engine.jobs(),
        engine.cache_stats()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        // Note: runs without the MATCH_* variables set in the test environment.
        let opts = options_from_env();
        assert!(!opts.process_counts.is_empty());
        assert!(!opts.apps.is_empty());
        assert!(opts.suite.repetitions >= 1);
    }
}
