//! Shared helpers for the MATCH-RS benchmark harnesses.
//!
//! Every figure/table of the paper has a `harness = false` bench target that prints the
//! regenerated rows as a text table of *virtual* time (the simulator's deterministic
//! clock). The helpers here read the environment knobs shared by all of them:
//!
//! * `MATCH_PROCS` — comma-separated process-count ladder (default `4,8,16,32`;
//!   the paper uses `64,128,256,512`),
//! * `MATCH_SCALE` — `smoke`, `bench` or `paper` input scaling (default `smoke`),
//! * `MATCH_APPS` — comma-separated subset of applications (default: all six),
//! * `MATCH_REPS` — repetitions per configuration (default 1; the paper uses 5),
//! * `MATCH_JOBS` — number of experiments run concurrently by the
//!   [`SuiteEngine`] (default: the host's available parallelism; the `match-bench`
//!   CLI also accepts `--jobs N`).

pub mod micro;

use match_core::matrix::MatrixOptions;
use match_core::proxies::registry::ExecutionScale;
use match_core::proxies::ProxyKind;
use match_core::{FigureData, SuiteEngine, SuiteOptions};

/// Reads the benchmark matrix options from the environment (see the module docs).
pub fn options_from_env() -> MatrixOptions {
    let procs: Vec<usize> = std::env::var("MATCH_PROCS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|p| p.trim().parse().ok())
                .filter(|&p| p > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![4, 8, 16, 32]);

    let scale = match std::env::var("MATCH_SCALE").as_deref() {
        Ok("paper") => ExecutionScale::paper(),
        Ok("bench") => ExecutionScale::bench(),
        _ => ExecutionScale::smoke(),
    };

    let apps: Vec<ProxyKind> = std::env::var("MATCH_APPS")
        .ok()
        .map(|s| {
            ProxyKind::ALL
                .into_iter()
                .filter(|k| {
                    s.split(',')
                        .any(|name| name.trim().eq_ignore_ascii_case(k.name()))
                })
                .collect()
        })
        .filter(|v: &Vec<ProxyKind>| !v.is_empty())
        .unwrap_or_else(|| ProxyKind::ALL.to_vec());

    let repetitions: u32 = std::env::var("MATCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);

    let default_procs = *procs.first().expect("non-empty process ladder");
    MatrixOptions {
        process_counts: procs,
        default_procs,
        apps,
        suite: SuiteOptions {
            scale,
            repetitions,
            seed: 2020,
        },
    }
}

/// Prints a figure with a standard banner, reporting the wall-clock time the
/// regeneration took.
pub fn print_figure(data: &FigureData, started: std::time::Instant) {
    println!("{}", data.render());
    println!(
        "[regenerated {} rows in {:.1}s wall-clock; times above are simulated seconds]",
        data.rows.len(),
        started.elapsed().as_secs_f64()
    );
}

/// Prints only the recovery-time series of a figure (Figs. 7 and 10 report recovery
/// time alone).
pub fn print_recovery_series(data: &FigureData, started: std::time::Instant) {
    let mut table =
        match_core::table::TextTable::new(vec!["Application", "Group", "Design", "Recovery (s)"]);
    for row in &data.rows {
        table.add_row(vec![
            row.app.name().to_string(),
            row.group.clone(),
            row.design.clone(),
            format!("{:.3}", row.recovery),
        ]);
    }
    println!("{}", data.title);
    println!("{}", table.render());
    println!(
        "[regenerated {} rows in {:.1}s wall-clock]",
        data.rows.len(),
        started.elapsed().as_secs_f64()
    );
}

/// Prints the engine's scheduling and cache counters — the line every harness emits
/// after its tables so cache reuse (e.g. `fig6` answering `findings` for free) is
/// visible in the output.
pub fn print_engine_line(engine: &SuiteEngine) {
    println!(
        "[engine: jobs={}; cache: {}]\n",
        engine.jobs(),
        engine.cache_stats()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_sane() {
        // Note: runs without the MATCH_* variables set in the test environment.
        let opts = options_from_env();
        assert!(!opts.process_counts.is_empty());
        assert!(!opts.apps.is_empty());
        assert!(opts.suite.repetitions >= 1);
    }
}
