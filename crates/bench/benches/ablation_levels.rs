//! Ablation: checkpoint cost of the four FTI levels (L1 RAM disk, L2 partner copy,
//! L3 Reed-Solomon group, L4 parallel file system with and without differential
//! writes) on the HPCCG workload. The paper evaluates only L1 (and cites the FTI paper
//! for the level comparison); this ablation documents how the levels behave in the
//! reproduction.

use std::sync::Arc;

use match_core::fti::store::CheckpointStore;
use match_core::fti::{CheckpointLevel, FtiConfig};
use match_core::mpisim::{Cluster, ClusterConfig};
use match_core::proxies::registry::{ExecutionScale, ProxySpec};
use match_core::proxies::{InputSize, ProxyKind};
use match_core::recovery::{FaultPlan, FtConfig, FtDriver, RecoveryStrategy};
use match_core::table::TextTable;

fn main() {
    let mut table = TextTable::new(vec![
        "Level",
        "Differential",
        "Application (s)",
        "Write Checkpoints (s)",
        "Ckpt share",
    ]);
    let spec = ProxySpec::new(ProxyKind::Hpccg, InputSize::Small, ExecutionScale::bench());
    for (level, differential) in [
        (CheckpointLevel::L1, false),
        (CheckpointLevel::L2, false),
        (CheckpointLevel::L3, false),
        (CheckpointLevel::L4, false),
        (CheckpointLevel::L4, true),
    ] {
        let fti_config = FtiConfig::level(level)
            .interval(5)
            .differential(differential);
        let config =
            FtConfig::new(RecoveryStrategy::Reinit, fti_config).with_fault(FaultPlan::None);
        let cluster = Cluster::new(ClusterConfig::with_ranks(16));
        let store = CheckpointStore::shared();
        let outcome = cluster.run(|ctx| {
            let driver = FtDriver::new(config.clone(), Arc::clone(&store));
            let app = spec.build();
            driver.execute(ctx, |ctx, fti, injector| app.run(ctx, fti, injector))
        });
        assert!(outcome.all_ok(), "{level}: {:?}", outcome.errors());
        let b = outcome.max_breakdown();
        table.add_row(vec![
            level.name().to_string(),
            if differential {
                "yes".to_string()
            } else {
                "no".to_string()
            },
            format!("{:.3}", b.application.as_secs()),
            format!("{:.3}", b.checkpoint_write.as_secs()),
            format!("{:.1}%", b.checkpoint_fraction() * 100.0),
        ]);
    }
    println!("Ablation: FTI checkpoint levels on HPCCG (16 processes, no failures)");
    println!("{}", table.render());
}
