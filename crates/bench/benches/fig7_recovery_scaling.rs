//! Regenerates Figure 7: MPI recovery time for different scaling sizes.

use std::time::Instant;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig7_recovery_scaling(&options);
    match_bench::print_recovery_series(&data, started);
}
