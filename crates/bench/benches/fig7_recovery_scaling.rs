//! Regenerates Figure 7: MPI recovery time for different scaling sizes.

use std::time::Instant;

use match_core::SuiteEngine;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig7_recovery_scaling(&options).expect("figure 7 matrix");
    match_bench::print_recovery_series(&data, started);
    match_bench::print_engine_line(SuiteEngine::global());
}
