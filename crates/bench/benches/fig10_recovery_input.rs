//! Regenerates Figure 10: MPI recovery time for different input problem sizes.

use std::time::Instant;

use match_core::SuiteEngine;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig10_recovery_input(&options).expect("figure 10 matrix");
    match_bench::print_recovery_series(&data, started);
    match_bench::print_engine_line(SuiteEngine::global());
}
