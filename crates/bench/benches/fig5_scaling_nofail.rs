//! Regenerates Figure 5: execution-time breakdown across scaling sizes, no failures.

use std::time::Instant;

use match_core::SuiteEngine;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig5_scaling_no_failure(&options).expect("figure 5 matrix");
    match_bench::print_figure(&data, started);
    match_bench::print_engine_line(SuiteEngine::global());
}
