//! Regenerates Figure 9: execution-time breakdown recovering from a process failure
//! across input problem sizes.

use std::time::Instant;

use match_core::SuiteEngine;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig9_input_with_failure(&options).expect("figure 9 matrix");
    match_bench::print_figure(&data, started);
    match_bench::print_engine_line(SuiteEngine::global());
}
