//! Regenerates Figure 9: execution-time breakdown recovering from a process failure
//! across input problem sizes.

use std::time::Instant;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig9_input_with_failure(&options);
    match_bench::print_figure(&data, started);
}
