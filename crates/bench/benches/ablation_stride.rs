//! Ablation: checkpoint-interval (stride) sweep. The paper fixes the stride at every
//! ten iterations; this ablation shows the trade-off between checkpoint overhead (no
//! failure) and lost work (with a late failure) as the stride varies.

use std::sync::Arc;

use match_core::fti::store::CheckpointStore;
use match_core::fti::FtiConfig;
use match_core::mpisim::{Cluster, ClusterConfig};
use match_core::proxies::registry::{ExecutionScale, ProxySpec};
use match_core::proxies::{InputSize, ProxyKind};
use match_core::recovery::{FaultPlan, FtConfig, FtDriver, RecoveryStrategy};
use match_core::table::TextTable;

fn main() {
    let mut table = TextTable::new(vec![
        "Stride (iterations)",
        "No-failure total (s)",
        "Ckpt share",
        "With-failure total (s)",
    ]);
    let spec = ProxySpec::new(ProxyKind::Hpccg, InputSize::Small, ExecutionScale::bench());
    for stride in [2u64, 5, 10, 20] {
        let run = |fault: FaultPlan| {
            let config = FtConfig::new(
                RecoveryStrategy::Reinit,
                FtiConfig::default().interval(stride),
            )
            .with_fault(fault);
            let cluster = Cluster::new(ClusterConfig::with_ranks(16));
            let store = CheckpointStore::shared();
            let outcome = cluster.run(|ctx| {
                let driver = FtDriver::new(config.clone(), Arc::clone(&store));
                let app = spec.build();
                driver.execute(ctx, |ctx, fti, injector| app.run(ctx, fti, injector))
            });
            assert!(outcome.all_ok(), "{:?}", outcome.errors());
            outcome.max_breakdown()
        };
        let quiet = run(FaultPlan::None);
        let faulty = run(FaultPlan::kill_rank_at(3, 18));
        table.add_row(vec![
            stride.to_string(),
            format!("{:.3}", quiet.total().as_secs()),
            format!("{:.1}%", quiet.checkpoint_fraction() * 100.0),
            format!("{:.3}", faulty.total().as_secs()),
        ]);
    }
    println!("Ablation: checkpoint stride on HPCCG (16 processes, REINIT-FTI)");
    println!("{}", table.render());
}
