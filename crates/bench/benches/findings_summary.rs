//! Derives the Section V-C findings (Reinit vs. ULFM vs. Restart ratios, checkpoint
//! share, ULFM application-time inflation) from the with-failure scaling matrix, and
//! prints them next to the values the paper reports.

use std::time::Instant;

use match_core::findings::Findings;
use match_core::SuiteEngine;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let engine = SuiteEngine::global();
    let findings = Findings::compute(engine, &options).expect("findings matrix");
    println!("Section V-C findings (derived from the Fig. 6 matrix at the configured scale)");
    println!("{}", findings.to_table().render());
    println!(
        "[derived in {:.1}s wall-clock]",
        started.elapsed().as_secs_f64()
    );
    match_bench::print_engine_line(engine);
}
