//! Criterion micro-benchmarks of the substrate primitives: collective cost evaluation,
//! Reed-Solomon encode/decode, differential-checkpoint delta computation, and a small
//! end-to-end cluster allreduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use match_core::fti::{diff, rs_code};
use match_core::mpisim::machine::{CollectiveKind, MachineModel};
use match_core::mpisim::{Cluster, ClusterConfig};

fn bench_machine_model(c: &mut Criterion) {
    let machine = MachineModel::default();
    c.bench_function("machine/allreduce_cost_512", |b| {
        b.iter(|| machine.collective_cost(CollectiveKind::Allreduce, std::hint::black_box(512), 4096))
    });
    c.bench_function("machine/ulfm_recovery_cost_512", |b| {
        b.iter(|| machine.ulfm_recovery_cost(std::hint::black_box(512), 1))
    });
}

fn bench_rs_codec(c: &mut Criterion) {
    let data: Vec<u8> = (0..1 << 16).map(|i| (i % 251) as u8).collect();
    let mut group = c.benchmark_group("rs_codec");
    for &(k, m) in &[(4usize, 2usize), (8, 3)] {
        group.bench_with_input(BenchmarkId::new("encode", format!("k{k}m{m}")), &(k, m), |b, &(k, m)| {
            b.iter(|| rs_code::encode(std::hint::black_box(&data), k, m).unwrap())
        });
        let encoded = rs_code::encode(&data, k, m).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.shards.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        group.bench_with_input(BenchmarkId::new("decode_2_erasures", format!("k{k}m{m}")), &(k, m), |b, &(k, m)| {
            b.iter(|| rs_code::decode(std::hint::black_box(&shards), k, m, encoded.original_len).unwrap())
        });
    }
    group.finish();
}

fn bench_diff(c: &mut Criterion) {
    let base = vec![7u8; 1 << 20];
    let mut new = base.clone();
    new[12345] = 1;
    new[999_999] = 2;
    c.bench_function("diff/delta_1MiB_sparse_change", |b| {
        b.iter(|| diff::compute_delta(std::hint::black_box(&base), &new, 4096))
    });
}

fn bench_cluster_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    for &nprocs in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("allreduce_round", nprocs), &nprocs, |b, &nprocs| {
            b.iter(|| {
                let cluster = Cluster::new(ClusterConfig::with_ranks(nprocs));
                let outcome = cluster.run(|ctx| {
                    let world = ctx.world();
                    let mut acc = 0.0;
                    for _ in 0..5 {
                        acc = ctx.allreduce_sum_f64(&world, 1.0)?;
                    }
                    Ok(acc)
                });
                assert!(outcome.all_ok());
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_machine_model,
    bench_rs_codec,
    bench_diff,
    bench_cluster_allreduce
);
criterion_main!(benches);
