//! Micro-benchmarks of the substrate primitives: collective cost evaluation,
//! Reed-Solomon encode/decode, differential-checkpoint delta computation, and a small
//! end-to-end cluster allreduce.
//!
//! The build environment is fully offline, so instead of the criterion crate this
//! harness uses a small built-in timer: each benchmark is warmed up, then run in
//! batches until a time budget is spent, and the per-iteration minimum, median and
//! mean are reported (the minimum is the most noise-resistant of the three on a
//! shared machine).

use std::hint::black_box;
use std::time::{Duration, Instant};

use match_core::fti::{diff, rs_code};
use match_core::mpisim::machine::{CollectiveKind, MachineModel};
use match_core::mpisim::{Cluster, ClusterConfig};

const WARMUP: Duration = Duration::from_millis(50);
const BUDGET: Duration = Duration::from_millis(300);

fn bench<F: FnMut()>(name: &str, mut f: F) {
    // Warm up and estimate a batch size targeting ~1ms per sample.
    let warm_start = Instant::now();
    let mut warm_iters: u32 = 0;
    while warm_start.elapsed() < WARMUP {
        f();
        warm_iters += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let batch = ((1e-3 / per_iter.max(1e-9)) as u32).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::new();
    let run_start = Instant::now();
    while run_start.elapsed() < BUDGET {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_secs_f64() / batch as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = samples.first().copied().unwrap_or(0.0);
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<44} min {:>10}  median {:>10}  mean {:>10}  ({} samples x {batch} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else {
        format!("{:.2} ms", seconds * 1e3)
    }
}

fn bench_machine_model() {
    let machine = MachineModel::default();
    bench("machine/allreduce_cost_512", || {
        black_box(machine.collective_cost(CollectiveKind::Allreduce, black_box(512), 4096));
    });
    bench("machine/ulfm_recovery_cost_512", || {
        black_box(machine.ulfm_recovery_cost(black_box(512), 1));
    });
}

fn bench_rs_codec() {
    let data: Vec<u8> = (0..1 << 16).map(|i| (i % 251) as u8).collect();
    for &(k, m) in &[(4usize, 2usize), (8, 3)] {
        bench(&format!("rs_codec/encode/k{k}m{m}"), || {
            black_box(rs_code::encode(black_box(&data), k, m).unwrap());
        });
        let encoded = rs_code::encode(&data, k, m).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = encoded.shards.iter().cloned().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        bench(&format!("rs_codec/decode_2_erasures/k{k}m{m}"), || {
            black_box(rs_code::decode(black_box(&shards), k, m, encoded.original_len).unwrap());
        });
    }
}

fn bench_diff() {
    let base = vec![7u8; 1 << 20];
    let mut new = base.clone();
    new[12345] = 1;
    new[999_999] = 2;
    bench("diff/delta_1MiB_sparse_change", || {
        black_box(diff::compute_delta(black_box(&base), &new, 4096));
    });
}

fn bench_cluster_allreduce() {
    for &nprocs in &[4usize, 16] {
        bench(&format!("cluster/allreduce_round/{nprocs}"), || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(nprocs));
            let outcome = cluster.run(|ctx| {
                let world = ctx.world();
                let mut acc = 0.0;
                for _ in 0..5 {
                    acc = ctx.allreduce_sum_f64(&world, 1.0)?;
                }
                Ok(acc)
            });
            assert!(outcome.all_ok());
        });
    }
}

fn main() {
    println!("MATCH-RS micro-benchmarks (built-in timer; lower is better)\n");
    bench_machine_model();
    bench_rs_codec();
    bench_diff();
    bench_cluster_allreduce();
}
