//! Micro-benchmarks of the substrate primitives: collective cost evaluation, the
//! data-plane kernels (Reed–Solomon encode/decode, differential-checkpoint delta,
//! shared-payload fan-out — each measured against its kept scalar/owned baseline via
//! [`match_bench::micro`]), and a small end-to-end cluster allreduce.
//!
//! The build environment is fully offline, so instead of the criterion crate this
//! harness uses a small built-in timer: each benchmark is warmed up, then run in
//! batches until a time budget is spent, and the per-iteration minimum is reported
//! (the most noise-resistant statistic on a shared machine).

use std::hint::black_box;

use match_bench::micro;
use match_core::mpisim::machine::{CollectiveKind, MachineModel};
use match_core::mpisim::{Cluster, ClusterConfig};

fn report(name: &str, ns: f64) {
    println!("{name:<44} min {}", fmt_time(ns / 1e9));
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} us", seconds * 1e6)
    } else {
        format!("{:.2} ms", seconds * 1e3)
    }
}

fn bench_machine_model() {
    let machine = MachineModel::default();
    report(
        "machine/allreduce_cost_512",
        micro::time_ns(|| {
            black_box(machine.collective_cost(CollectiveKind::Allreduce, black_box(512), 4096));
        }),
    );
    report(
        "machine/ulfm_recovery_cost_512",
        micro::time_ns(|| {
            black_box(machine.ulfm_recovery_cost(black_box(512), 1));
        }),
    );
}

fn bench_data_plane_kernels() {
    for k in micro::run_kernels() {
        report(&format!("{}/fast", k.name), k.ns_per_op);
        report(&format!("{}/baseline", k.name), k.baseline_ns_per_op);
        println!("{:<44} speedup {:.2}x", k.name, k.speedup());
    }
}

fn bench_cluster_allreduce() {
    for &nprocs in &[4usize, 16] {
        report(
            &format!("cluster/allreduce_round/{nprocs}"),
            micro::time_ns(|| {
                let cluster = Cluster::new(ClusterConfig::with_ranks(nprocs));
                let outcome = cluster.run(|ctx| {
                    let world = ctx.world();
                    let mut acc = 0.0;
                    for _ in 0..5 {
                        acc = ctx.allreduce_sum_f64(&world, 1.0)?;
                    }
                    Ok(acc)
                });
                assert!(outcome.all_ok());
            }),
        );
    }
}

fn main() {
    println!("MATCH-RS micro-benchmarks (built-in timer; lower is better)\n");
    bench_machine_model();
    bench_data_plane_kernels();
    bench_cluster_allreduce();
}
