//! Regenerates Figure 6: execution-time breakdown recovering from a process failure
//! across scaling sizes.

use std::time::Instant;

use match_core::SuiteEngine;

fn main() {
    let options = match_bench::options_from_env();
    let started = Instant::now();
    let data = match_core::figures::fig6_scaling_with_failure(&options).expect("figure 6 matrix");
    match_bench::print_figure(&data, started);
    match_bench::print_engine_line(SuiteEngine::global());
}
