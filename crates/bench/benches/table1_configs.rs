//! Regenerates Table I: the experimentation configuration of the proxy applications.

fn main() {
    println!("Table I: experimentation configuration for proxy applications");
    println!("{}", match_core::table1::table1().render());
}
