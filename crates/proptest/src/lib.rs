//! # proptest (workspace shim)
//!
//! A minimal, API-compatible stand-in for the subset of the `proptest` crate the
//! MATCH-RS property tests use. The build environment is fully offline, so external
//! crates are replaced by workspace-local shims.
//!
//! Differences from the real crate, all deliberate:
//!
//! * sampling is **deterministic** — every test function derives its RNG seed from its
//!   own name and the case index, so failures reproduce without a persistence file;
//! * shrinking is **explicit** — the [`proptest!`] macro reports a failing case
//!   directly (its inputs are already reproducible from the test name and case
//!   index), and callers that want a minimal repro run the deterministic
//!   integer-bisection and delta-debugging shrinkers in [`shrink`] themselves (the
//!   fault-space explorer routes its trace minimisation through them);
//! * string strategies support only the tiny regex subset the suite uses
//!   (character classes with optional `{m,n}` repetition, e.g. `"[a-z][a-z0-9]{0,8}"`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::rc::Rc;

/// Deterministic splitmix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one (test, case) pair: the stream depends only on
    /// the test's name and the case index.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty sampling bound");
        (self.next_u64() % bound as u64) as usize
    }
}

/// A source of sampled values (the shim's notion of a proptest strategy).
pub trait Strategy {
    /// The type of the sampled values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects samples failing `predicate` (resamples; gives up after 1000 tries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            predicate,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.predicate)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn sample(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// The strategy of every value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy of arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+
    };
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Raw bit patterns: covers normals, subnormals, infinities and NaNs, like the
        // real crate's full-range f64 strategy. Tests that cannot digest NaN filter it.
        f64::from_bits(rng.next_u64())
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

/// String strategy from a regex-like pattern: a sequence of character classes
/// (`[a-z]`, `[a-z0-9]`), each optionally repeated `{min,max}` times.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            assert_eq!(chars[i], '[', "unsupported pattern {self:?}: expected '['");
            i += 1;
            let mut class = Vec::new();
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                    assert!(lo <= hi, "bad class range in {self:?}");
                    for c in lo..=hi {
                        class.push(char::from_u32(c).expect("valid range char"));
                    }
                    i += 3;
                } else {
                    class.push(chars[i]);
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated class in {self:?}");
            i += 1; // consume ']'
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("closing brace")
                    + i;
                let spec: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = spec.split_once(',').expect("min,max repetition");
                i = close + 1;
                (
                    lo.parse::<usize>().expect("min"),
                    hi.parse::<usize>().expect("max"),
                )
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(class[rng.below(class.len())]);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// A uniform choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<V> {
    /// The alternatives chosen between.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy of `Vec`s whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// A strategy of `Option`s that are `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Deterministic minimal-repro shrinkers.
///
/// Each function takes a *failing* input and a predicate that re-runs the property,
/// returning `true` when the candidate still fails. The result is guaranteed to
/// still fail (the original is returned unchanged when nothing simpler does), and
/// is **1-minimal** in the respective move set: no single further halving step
/// (integers) or single-element removal (vectors) keeps the failure.
pub mod shrink {
    /// The classic binary-search shrink ladder for a failing integer: `lo` itself
    /// first (the simplest possible value), then values halving the distance back
    /// toward `value`. Empty when `value` is already minimal.
    pub fn integer_candidates(value: u64, lo: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if value <= lo {
            return out;
        }
        out.push(lo);
        let mut delta = value - lo;
        while delta > 1 {
            delta /= 2;
            out.push(value - delta);
        }
        out
    }

    /// The smallest `v >= lo` for which `fails(v)` holds, assuming `fails(value)`.
    /// Deterministic: the same inputs and predicate always walk the same ladder.
    pub fn minimize_u64(mut value: u64, lo: u64, mut fails: impl FnMut(u64) -> bool) -> u64 {
        loop {
            let better = integer_candidates(value, lo)
                .into_iter()
                .find(|&c| fails(c));
            match better {
                Some(c) => value = c,
                None => return value,
            }
        }
    }

    /// [`minimize_u64`] for `usize` inputs (victim indices, counts).
    pub fn minimize_usize(value: usize, lo: usize, mut fails: impl FnMut(usize) -> bool) -> usize {
        minimize_u64(value as u64, lo as u64, |v| fails(v as usize)) as usize
    }

    /// Delta-debugging (ddmin-lite) minimisation of a failing sequence: repeatedly
    /// removes contiguous chunks — halving the chunk size whenever a full pass
    /// removes nothing — while the predicate keeps failing. The result is a
    /// subsequence of `items` from which no single element can be removed without
    /// losing the failure.
    pub fn minimize_vec<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
        let mut current = items.to_vec();
        let mut chunk = (current.len() / 2).max(1);
        loop {
            let mut removed_any = false;
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let mut candidate = current[..start].to_vec();
                candidate.extend_from_slice(&current[end..]);
                if fails(&candidate) {
                    // Keep `start` in place: the next chunk slid into this position.
                    current = candidate;
                    removed_any = true;
                } else {
                    start = end;
                }
            }
            if removed_any {
                continue;
            }
            if chunk == 1 {
                return current;
            }
            chunk /= 2;
        }
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases sampled per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Chooses uniformly between the given strategies (all must sample the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

/// Declares property-test functions: each named argument is sampled from its
/// strategy for every case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::TestRng::deterministic(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut prop_rng);)+
                    $body
                }
            }
        )+
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_rng_streams() {
        let mut a = crate::TestRng::deterministic("t", 0);
        let mut b = crate::TestRng::deterministic("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("t", 1);
        assert_ne!(
            crate::TestRng::deterministic("t", 0).next_u64(),
            c.next_u64()
        );
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::deterministic("s", 0);
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-z][a-z0-9]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let t = Strategy::sample(&"[a-z]{0,6}", &mut rng);
            assert!(t.len() <= 6);
        }
    }

    #[test]
    fn integer_shrink_finds_the_boundary_and_still_fails() {
        // The property "fails when v >= 17" must shrink 1000 exactly to 17.
        let fails = |v: u64| v >= 17;
        let shrunk = crate::shrink::minimize_u64(1000, 0, fails);
        assert_eq!(shrunk, 17);
        assert!(fails(shrunk), "shrunk repro no longer fails");
        // Already-minimal inputs come back unchanged.
        assert_eq!(crate::shrink::minimize_u64(17, 0, fails), 17);
        // A floor above the boundary pins the result at the floor.
        assert_eq!(crate::shrink::minimize_u64(1000, 40, fails), 40);
        assert_eq!(crate::shrink::minimize_usize(999, 3, |v| v >= 17), 17);
    }

    #[test]
    fn integer_candidates_halve_toward_the_failing_value() {
        assert_eq!(
            crate::shrink::integer_candidates(16, 0),
            vec![0, 8, 12, 14, 15]
        );
        assert!(crate::shrink::integer_candidates(5, 5).is_empty());
        assert!(crate::shrink::integer_candidates(3, 9).is_empty());
    }

    #[test]
    fn vec_shrink_keeps_exactly_the_failure_witnesses() {
        // The property "fails when both 3 and 7 are present" must shrink a noisy
        // vector to exactly [3, 7], order preserved.
        let fails = |items: &[u32]| items.contains(&3) && items.contains(&7);
        let noisy = vec![9, 1, 3, 4, 4, 2, 7, 8, 0, 5];
        let shrunk = crate::shrink::minimize_vec(&noisy, fails);
        assert_eq!(shrunk, vec![3, 7]);
        assert!(fails(&shrunk), "shrunk repro no longer fails");
    }

    #[test]
    fn vec_shrink_result_is_one_minimal_and_a_subsequence() {
        // "fails when the sum is >= 10" over a vector of ones: any 10 survive, and
        // removing one more loses the failure.
        let fails = |items: &[u32]| items.iter().sum::<u32>() >= 10;
        let shrunk = crate::shrink::minimize_vec(&vec![1u32; 64], fails);
        assert_eq!(shrunk.len(), 10);
        assert!(fails(&shrunk));
        for i in 0..shrunk.len() {
            let mut fewer = shrunk.clone();
            fewer.remove(i);
            assert!(!fails(&fewer), "result was not 1-minimal");
        }
        // An unshrinkable failure (the empty vector already fails) ends empty.
        assert!(crate::shrink::minimize_vec(&[1u32, 2, 3], |_| true).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_samples_all_argument_kinds(
            n in 1usize..50,
            raw in any::<u64>(),
            flag in any::<bool>(),
            items in crate::collection::vec(any::<u8>(), 0..10),
            maybe in crate::option::of(any::<u32>()),
            choice in prop_oneof![Just(1u8), Just(2u8)],
            positive in any::<f64>().prop_filter("finite", |x| x.is_finite()),
        ) {
            prop_assert!((1..50).contains(&n));
            let _ = raw;
            let _ = flag;
            prop_assert!(items.len() < 10);
            if let Some(v) = maybe {
                let _ = v;
            }
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(positive.is_finite());
        }
    }
}
