//! The proxy-application registry: Table I configurations and builders.
//!
//! Table I of the MATCH paper lists, for each of the six proxy applications, the
//! command-line arguments of its small, medium and large input problems and the
//! process counts it is evaluated on. This module reproduces that table
//! ([`ProxyKind::table1_args`], [`ProxyKind::process_counts`]) and builds runnable
//! application instances from it.
//!
//! Because the original inputs are sized for a 32-node production cluster, the builder
//! takes an [`ExecutionScale`] that shrinks the per-rank extents (and caps the
//! iteration counts) while keeping the small/medium/large ratios, so that the full
//! evaluation matrix regenerates in minutes on a laptop. `ExecutionScale::paper()`
//! keeps the original extents.

use crate::amg::{Amg, AmgParams};
use crate::comd::{Comd, ComdParams};
use crate::common::{InputSize, ProxyApp};
use crate::hpccg::{Hpccg, HpccgParams};
use crate::lulesh::{Lulesh, LuleshParams};
use crate::minife::{MiniFe, MiniFeParams};
use crate::minivite::{MiniVite, MiniViteParams};

/// How far to scale the Table I inputs down for execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionScale {
    /// Fraction applied to linear grid extents (and to miniVite's vertex count).
    pub linear_fraction: f64,
    /// Upper bound on the number of main-loop iterations.
    pub iteration_cap: u64,
    /// Lower bound on any scaled linear extent.
    pub min_extent: usize,
}

impl ExecutionScale {
    /// The paper's original extents (use with care: the large inputs are sized for a
    /// production cluster).
    pub fn paper() -> Self {
        ExecutionScale {
            linear_fraction: 1.0,
            iteration_cap: 50,
            min_extent: 4,
        }
    }

    /// The default scale used by the figure benches: quarter-size linear extents.
    pub fn bench() -> Self {
        ExecutionScale {
            linear_fraction: 0.25,
            iteration_cap: 20,
            min_extent: 4,
        }
    }

    /// A tiny scale for smoke tests.
    pub fn smoke() -> Self {
        ExecutionScale {
            linear_fraction: 0.1,
            iteration_cap: 8,
            min_extent: 3,
        }
    }

    /// Applies the scale to a linear extent.
    pub fn extent(&self, nominal: usize) -> usize {
        ((nominal as f64 * self.linear_fraction).round() as usize).max(self.min_extent)
    }

    /// Applies the scale to an iteration count.
    pub fn iterations(&self, nominal: u64) -> u64 {
        nominal.min(self.iteration_cap).max(1)
    }
}

impl Default for ExecutionScale {
    fn default() -> Self {
        Self::bench()
    }
}

/// The six proxy applications of the MATCH suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProxyKind {
    /// Algebraic multigrid (ECP proxy, HYPRE/BoomerAMG).
    Amg,
    /// Classical molecular dynamics (ECP proxy).
    Comd,
    /// Preconditioned conjugate gradient (Mantevo/ASC proxy).
    Hpccg,
    /// Sedov-blast shock hydrodynamics (LLNL ASC proxy).
    Lulesh,
    /// Implicit finite elements (Mantevo proxy).
    MiniFe,
    /// Distributed Louvain community detection (ECP proxy).
    MiniVite,
}

impl ProxyKind {
    /// All six applications, in the order the paper's figures present them.
    pub const ALL: [ProxyKind; 6] = [
        ProxyKind::Amg,
        ProxyKind::Comd,
        ProxyKind::Hpccg,
        ProxyKind::Lulesh,
        ProxyKind::MiniFe,
        ProxyKind::MiniVite,
    ];

    /// The application's name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ProxyKind::Amg => "AMG",
            ProxyKind::Comd => "CoMD",
            ProxyKind::Hpccg => "HPCCG",
            ProxyKind::Lulesh => "LULESH",
            ProxyKind::MiniFe => "miniFE",
            ProxyKind::MiniVite => "miniVite",
        }
    }

    /// The Table I command-line arguments of the given input size.
    pub fn table1_args(&self, size: InputSize) -> &'static str {
        match (self, size) {
            (ProxyKind::Amg, InputSize::Small) => "-problem 2 -n 20 20 20",
            (ProxyKind::Amg, InputSize::Medium) => "-problem 2 -n 40 40 40",
            (ProxyKind::Amg, InputSize::Large) => "-problem 2 -n 60 60 60",
            (ProxyKind::Comd, InputSize::Small) => "-nx 128 -ny 128 -nz 128",
            (ProxyKind::Comd, InputSize::Medium) => "-nx 256 -ny 256 -nz 256",
            (ProxyKind::Comd, InputSize::Large) => "-nx 512 -ny 512 -nz 512",
            (ProxyKind::Hpccg, InputSize::Small) => "64 64 64",
            (ProxyKind::Hpccg, InputSize::Medium) => "128 128 128",
            (ProxyKind::Hpccg, InputSize::Large) => "192 192 192",
            (ProxyKind::Lulesh, InputSize::Small) => "-s 30 -p",
            (ProxyKind::Lulesh, InputSize::Medium) => "-s 40 -p",
            (ProxyKind::Lulesh, InputSize::Large) => "-s 50 -p",
            (ProxyKind::MiniFe, InputSize::Small) => "-nx 20 -ny 20 -nz 20",
            (ProxyKind::MiniFe, InputSize::Medium) => "-nx 40 -ny 40 -nz 40",
            (ProxyKind::MiniFe, InputSize::Large) => "-nx 60 -ny 60 -nz 60",
            (ProxyKind::MiniVite, InputSize::Small) => "-p 3 -l -n 128000",
            (ProxyKind::MiniVite, InputSize::Medium) => "-p 3 -l -n 256000",
            (ProxyKind::MiniVite, InputSize::Large) => "-p 3 -l -n 512000",
        }
    }

    /// The process counts this application is evaluated on (Table I): all applications
    /// use 64–512 processes except LULESH, which requires a cube number of processes
    /// and therefore runs only on 64 and 512.
    pub fn process_counts(&self) -> &'static [usize] {
        match self {
            ProxyKind::Lulesh => &[64, 512],
            _ => &[64, 128, 256, 512],
        }
    }

    /// The nominal linear extent of the given input size (the scalar behind
    /// [`ProxyKind::table1_args`]).
    fn nominal_extent(&self, size: InputSize) -> usize {
        match (self, size) {
            (ProxyKind::Amg, InputSize::Small) | (ProxyKind::MiniFe, InputSize::Small) => 20,
            (ProxyKind::Amg, InputSize::Medium) | (ProxyKind::MiniFe, InputSize::Medium) => 40,
            (ProxyKind::Amg, InputSize::Large) | (ProxyKind::MiniFe, InputSize::Large) => 60,
            (ProxyKind::Comd, InputSize::Small) => 128,
            (ProxyKind::Comd, InputSize::Medium) => 256,
            (ProxyKind::Comd, InputSize::Large) => 512,
            (ProxyKind::Hpccg, InputSize::Small) => 64,
            (ProxyKind::Hpccg, InputSize::Medium) => 128,
            (ProxyKind::Hpccg, InputSize::Large) => 192,
            (ProxyKind::Lulesh, InputSize::Small) => 30,
            (ProxyKind::Lulesh, InputSize::Medium) => 40,
            (ProxyKind::Lulesh, InputSize::Large) => 50,
            (ProxyKind::MiniVite, InputSize::Small) => 128_000,
            (ProxyKind::MiniVite, InputSize::Medium) => 256_000,
            (ProxyKind::MiniVite, InputSize::Large) => 512_000,
        }
    }

    /// The nominal number of main-loop iterations the suite runs for this application
    /// (before the execution scale's cap).
    pub fn nominal_iterations(&self) -> u64 {
        match self {
            ProxyKind::Amg => 15,
            ProxyKind::Comd => 20,
            ProxyKind::Hpccg => 25,
            ProxyKind::Lulesh => 20,
            ProxyKind::MiniFe => 20,
            ProxyKind::MiniVite => 12,
        }
    }

    /// Builds a runnable application instance for the given input size and execution
    /// scale.
    pub fn build(&self, size: InputSize, scale: ExecutionScale) -> Box<dyn ProxyApp> {
        let iters = scale.iterations(self.nominal_iterations());
        match self {
            ProxyKind::Amg => {
                let n = scale.extent(self.nominal_extent(size));
                // Keep the z extent small: the per-rank grid is decomposed along z and
                // the original AMG problem is strongly anisotropic.
                Box::new(Amg::new(AmgParams::new(
                    n.max(8),
                    n.max(8),
                    (n / 4).max(2),
                    iters,
                )))
            }
            ProxyKind::Comd => {
                let n = scale.extent(self.nominal_extent(size));
                Box::new(Comd::new(ComdParams::new(
                    n,
                    (n / 4).max(2),
                    (n / 4).max(2),
                    iters,
                )))
            }
            ProxyKind::Hpccg => {
                let n = scale.extent(self.nominal_extent(size));
                Box::new(Hpccg::new(HpccgParams::new(
                    n / 2 + 1,
                    n / 2 + 1,
                    (n / 4).max(2),
                    iters,
                )))
            }
            ProxyKind::Lulesh => {
                let s = scale.extent(self.nominal_extent(size));
                Box::new(Lulesh::new(LuleshParams::new(s, iters)))
            }
            ProxyKind::MiniFe => {
                let n = scale.extent(self.nominal_extent(size));
                Box::new(MiniFe::new(MiniFeParams::new(n, n, (n / 2).max(2), iters)))
            }
            ProxyKind::MiniVite => {
                let v = ((self.nominal_extent(size) as f64 * scale.linear_fraction * 0.05)
                    as usize)
                    .max(128);
                Box::new(MiniVite::new(MiniViteParams::new(v, 6, iters)))
            }
        }
    }
}

impl std::fmt::Display for ProxyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully specified workload: an application, an input size and the execution
/// scale. This is the unit the MATCH experiment matrix iterates over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxySpec {
    /// Which application.
    pub kind: ProxyKind,
    /// Which Table I input size.
    pub size: InputSize,
    /// How far the extents are scaled for execution.
    pub scale: ExecutionScale,
}

impl ProxySpec {
    /// Creates a spec.
    pub fn new(kind: ProxyKind, size: InputSize, scale: ExecutionScale) -> Self {
        ProxySpec { kind, size, scale }
    }

    /// Builds the runnable application.
    pub fn build(&self) -> Box<dyn ProxyApp> {
        self.kind.build(self.size, self.scale)
    }

    /// The Table I arguments this spec corresponds to.
    pub fn table1_args(&self) -> &'static str {
        self.kind.table1_args(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    #[test]
    fn table1_matches_the_paper() {
        assert_eq!(
            ProxyKind::Amg.table1_args(InputSize::Small),
            "-problem 2 -n 20 20 20"
        );
        assert_eq!(
            ProxyKind::Comd.table1_args(InputSize::Large),
            "-nx 512 -ny 512 -nz 512"
        );
        assert_eq!(
            ProxyKind::Hpccg.table1_args(InputSize::Medium),
            "128 128 128"
        );
        assert_eq!(ProxyKind::Lulesh.table1_args(InputSize::Small), "-s 30 -p");
        assert_eq!(
            ProxyKind::MiniFe.table1_args(InputSize::Large),
            "-nx 60 -ny 60 -nz 60"
        );
        assert_eq!(
            ProxyKind::MiniVite.table1_args(InputSize::Small),
            "-p 3 -l -n 128000"
        );
        assert_eq!(ProxyKind::Lulesh.process_counts(), &[64, 512]);
        assert_eq!(ProxyKind::Amg.process_counts(), &[64, 128, 256, 512]);
        assert_eq!(ProxyKind::ALL.len(), 6);
    }

    #[test]
    fn execution_scale_shrinks_and_caps() {
        let s = ExecutionScale::bench();
        assert_eq!(s.extent(64), 16);
        assert_eq!(s.extent(8), 4, "respects the minimum extent");
        assert_eq!(s.iterations(100), 20);
        let p = ExecutionScale::paper();
        assert_eq!(p.extent(64), 64);
        assert_eq!(ExecutionScale::default(), ExecutionScale::bench());
    }

    #[test]
    fn larger_inputs_build_larger_problems() {
        for kind in ProxyKind::ALL {
            let small = kind.build(InputSize::Small, ExecutionScale::smoke());
            let large = kind.build(InputSize::Large, ExecutionScale::smoke());
            assert_eq!(small.name(), kind.name());
            assert_eq!(large.name(), kind.name());
        }
    }

    #[test]
    fn every_proxy_runs_at_smoke_scale_on_four_ranks() {
        for kind in ProxyKind::ALL {
            let spec = ProxySpec::new(kind, InputSize::Small, ExecutionScale::smoke());
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(move |ctx| {
                let app = spec.build();
                run_standalone(
                    app.as_ref(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok(), "{kind}: {:?}", outcome.errors());
            let reference = outcome.value_of(0).checksum;
            assert!(reference.is_finite(), "{kind}");
            for r in outcome.ranks() {
                assert_eq!(r.result.as_ref().unwrap().checksum, reference, "{kind}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ProxyKind::MiniVite.to_string(), "miniVite");
        assert_eq!(ProxyKind::Hpccg.to_string(), "HPCCG");
    }
}
