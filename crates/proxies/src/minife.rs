//! miniFE: an unstructured implicit finite-element proxy.
//!
//! miniFE assembles a sparse stiffness matrix from hexahedral finite elements and then
//! solves the resulting linear system with conjugate gradients. The re-implementation
//! keeps both phases:
//!
//! 1. **Assembly** — loops over the rank's elements, computes a simplified trilinear
//!    hexahedron stiffness contribution and scatters it into an explicit CSR matrix
//!    (this is the phase that distinguishes miniFE from HPCCG, which applies its
//!    stencil matrix-free);
//! 2. **Solve** — a CG iteration on the assembled CSR matrix with one-plane halo
//!    exchanges along the z decomposition and all-reduce dot products.
//!
//! FTI protects the CG state (`x`, `r`, `p`), the iteration counter and the residual,
//! exactly the objects the paper's dependency-analysis principles select.

use fti::{Fti, Protectable};
use mpisim::{Comm, MpiError, RankCtx};
use recovery::FaultInjector;

use crate::common::{checksum, distributed_dot, halo_exchange, world_slab, AppOutput, ProxyApp};

/// miniFE parameters: per-process brick dimensions (`-nx -ny -nz`) and the CG
/// iteration bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiniFeParams {
    /// Nodes per process in x.
    pub nx: usize,
    /// Nodes per process in y.
    pub ny: usize,
    /// Nodes per process in z.
    pub nz: usize,
    /// Maximum number of CG iterations.
    pub max_iterations: u64,
}

impl MiniFeParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or no iterations are requested.
    pub fn new(nx: usize, ny: usize, nz: usize, max_iterations: u64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        MiniFeParams {
            nx,
            ny,
            nz,
            max_iterations,
        }
    }

    /// Nodes per process.
    pub fn local_nodes(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// A local compressed-sparse-row matrix.
#[derive(Debug, Clone, Default)]
struct Csr {
    row_ptr: Vec<usize>,
    cols: Vec<i64>,
    values: Vec<f64>,
}

/// Column index encoding: local indices are `0..n`; the halo planes below and above
/// are encoded as negative offsets so the SpMV can pick from the received planes.
const HALO_BELOW: i64 = -1;
const HALO_ABOVE: i64 = -2;

/// The miniFE proxy application.
#[derive(Debug, Clone)]
pub struct MiniFe {
    params: MiniFeParams,
}

impl MiniFe {
    /// Creates a miniFE instance.
    pub fn new(params: MiniFeParams) -> Self {
        MiniFe { params }
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &MiniFeParams {
        &self.params
    }

    fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.params.ny + iy) * self.params.nx + ix
    }

    /// Assembles the stiffness matrix: a 27-point coupling whose weights depend on how
    /// many index directions the neighbour shares with the row node (face, edge or
    /// corner coupling of the trilinear hexahedron), plus a dominant diagonal.
    /// Returns the matrix and the number of floating-point operations spent. The z
    /// extent is the rank's current slab of the global z axis, which changes when the
    /// world shrinks.
    fn assemble(&self, ctx: &mut RankCtx, nz: usize) -> Csr {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let n = nx * ny * nz;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut flops = 0.0;
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let mut off_diag_sum = 0.0;
                    let mut row_cols: Vec<(i64, f64)> = Vec::with_capacity(27);
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if dx == 0 && dy == 0 && dz == 0 {
                                    continue;
                                }
                                let jx = ix as i64 + dx;
                                let jy = iy as i64 + dy;
                                let jz = iz as i64 + dz;
                                if jx < 0 || jx >= nx as i64 || jy < 0 || jy >= ny as i64 {
                                    continue;
                                }
                                // Coupling strength by the number of non-zero offsets:
                                // face (-1.0), edge (-0.5), corner (-0.25), the shape of
                                // a trilinear hexahedral stiffness row.
                                let order = dx.abs() + dy.abs() + dz.abs();
                                let weight = match order {
                                    1 => -1.0,
                                    2 => -0.5,
                                    _ => -0.25,
                                };
                                flops += 6.0;
                                if jz < 0 {
                                    // Column lives in the plane received from below;
                                    // encode the in-plane offset in the high bits.
                                    let plane_idx = (jy as usize) * nx + jx as usize;
                                    row_cols.push((HALO_BELOW - 2 * plane_idx as i64, weight));
                                } else if jz >= nz as i64 {
                                    let plane_idx = (jy as usize) * nx + jx as usize;
                                    row_cols.push((HALO_ABOVE - 2 * plane_idx as i64, weight));
                                } else {
                                    row_cols.push((
                                        self.index(jx as usize, jy as usize, jz as usize) as i64,
                                        weight,
                                    ));
                                }
                                off_diag_sum += weight;
                            }
                        }
                    }
                    // Diagonal: strictly dominant so CG converges.
                    cols.push(self.index(ix, iy, iz) as i64);
                    values.push(-off_diag_sum + 1.0);
                    for (c, w) in row_cols {
                        cols.push(c);
                        values.push(w);
                    }
                    row_ptr.push(cols.len());
                }
            }
        }
        ctx.compute(flops);
        Csr {
            row_ptr,
            cols,
            values,
        }
    }

    /// SpMV with the assembled CSR matrix, resolving halo columns from the received
    /// planes. Returns the flop count.
    fn spmv(&self, a: &Csr, v: &[f64], below: &[f64], above: &[f64], y: &mut [f64]) -> f64 {
        let mut flops = 0.0;
        for (row, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in a.row_ptr[row]..a.row_ptr[row + 1] {
                let col = a.cols[idx];
                let value = a.values[idx];
                let x = if col >= 0 {
                    v[col as usize]
                } else if (col - HALO_BELOW) % 2 == 0 {
                    let plane_idx = ((HALO_BELOW - col) / 2) as usize;
                    if below.is_empty() {
                        0.0
                    } else {
                        below[plane_idx]
                    }
                } else {
                    let plane_idx = ((HALO_ABOVE - col) / 2) as usize;
                    if above.is_empty() {
                        0.0
                    } else {
                        above[plane_idx]
                    }
                };
                acc += value * x;
                flops += 2.0;
            }
            *out = acc;
        }
        flops
    }

    fn apply_operator(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        a: &Csr,
        v: &[f64],
        y: &mut [f64],
    ) -> Result<(), MpiError> {
        let plane = self.params.nx * self.params.ny;
        let bottom = v[..plane].to_vec();
        let top = v[v.len() - plane..].to_vec();
        let (below, above) = halo_exchange(ctx, comm, 21, &bottom, &top)?;
        let flops = self.spmv(a, v, &below, &above, y);
        ctx.compute(flops);
        Ok(())
    }
}

impl ProxyApp for MiniFe {
    fn name(&self) -> &'static str {
        "miniFE"
    }

    fn iterations(&self) -> u64 {
        self.params.max_iterations
    }

    fn global_units(&self, initial_ranks: usize) -> u64 {
        // One unit = one x/y node plane of the global brick.
        (self.params.nz * initial_ranks) as u64
    }

    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError> {
        let world = ctx.world();
        let global_nz = self.global_units(ctx.topology().nranks()) as usize;
        let (z_start, local_nz) = world_slab(&world, global_nz);
        let n = self.params.nx * self.params.ny * local_nz;

        // Assembly phase (re-executed on restart, like the original application).
        let matrix = self.assemble(ctx, local_nz);
        let b = vec![1.0f64; n];

        let mut x = vec![0.0f64; n];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut iteration: u64 = 0;
        let mut rr = distributed_dot(ctx, &world, &r, &r)?;

        fti.protect_partitioned(0, "x", &x, global_nz as u64);
        fti.protect_partitioned(1, "r", &r, global_nz as u64);
        fti.protect_partitioned(2, "p", &p, global_nz as u64);
        fti.protect(3, "iteration", &iteration);
        fti.protect(4, "rr", &rr);
        if fti.status().is_restart() {
            fti.recover(
                ctx,
                &mut [
                    (0, &mut x as &mut dyn Protectable),
                    (1, &mut r as &mut dyn Protectable),
                    (2, &mut p as &mut dyn Protectable),
                    (3, &mut iteration as &mut dyn Protectable),
                    (4, &mut rr as &mut dyn Protectable),
                ],
            )?;
        }

        let mut ap = vec![0.0f64; n];
        while iteration < self.params.max_iterations {
            let current = iteration + 1;
            injector.maybe_fail(ctx, current)?;

            self.apply_operator(ctx, &world, &matrix, &p, &mut ap)?;
            let pap = distributed_dot(ctx, &world, &p, &ap)?;
            let alpha = if pap.abs() > 0.0 { rr / pap } else { 0.0 };
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            ctx.compute(4.0 * n as f64);
            let rr_new = distributed_dot(ctx, &world, &r, &r)?;
            let beta = if rr.abs() > 0.0 { rr_new / rr } else { 0.0 };
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            ctx.compute(2.0 * n as f64);
            rr = rr_new;
            iteration = current;

            if fti.should_checkpoint(iteration) {
                fti.checkpoint(
                    ctx,
                    iteration,
                    &[
                        (0, &x as &dyn Protectable),
                        (1, &r as &dyn Protectable),
                        (2, &p as &dyn Protectable),
                        (3, &iteration as &dyn Protectable),
                        (4, &rr as &dyn Protectable),
                    ],
                )?;
            }
        }

        fti.finalize(ctx)?;
        let local = checksum(&x);
        let global = ctx.allreduce_sum_f64(&world, local)?;
        Ok(AppOutput {
            app: self.name(),
            iterations: iteration,
            checksum: global,
            figure_of_merit: rr.sqrt(),
            owned_units: (z_start as u64, local_nz as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    fn small() -> MiniFe {
        MiniFe::new(MiniFeParams::new(5, 5, 5, 10))
    }

    #[test]
    fn local_nodes_count() {
        assert_eq!(MiniFeParams::new(3, 4, 5, 1).local_nodes(), 60);
    }

    #[test]
    fn assembled_matrix_has_dominant_diagonal_rows() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(1));
        let outcome = cluster.run(|ctx| {
            let app = small();
            let m = app.assemble(ctx, app.params().nz);
            // Every row: diagonal entry is positive and at least the sum of the
            // magnitudes of the off-diagonal entries (weak diagonal dominance + 1).
            let n = app.params().local_nodes();
            for row in 0..n {
                let start = m.row_ptr[row];
                let end = m.row_ptr[row + 1];
                let diag = m.values[start];
                let off: f64 = m.values[start + 1..end].iter().map(|v| v.abs()).sum();
                assert!(
                    diag >= off + 1.0 - 1e-9,
                    "row {row}: diag {diag} vs off {off}"
                );
            }
            Ok(n)
        });
        assert!(outcome.all_ok());
    }

    #[test]
    fn cg_reduces_the_residual() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let outcome = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        assert!(outcome.all_ok(), "{:?}", outcome.errors());
        let out = outcome.value_of(0);
        assert_eq!(out.app, "miniFE");
        assert!(
            out.figure_of_merit < 1.0,
            "residual {}",
            out.figure_of_merit
        );
    }

    #[test]
    fn checksum_is_identical_on_all_ranks_and_deterministic() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok());
            let reference = outcome.value_of(0).checksum;
            for r in outcome.ranks() {
                assert_eq!(r.result.as_ref().unwrap().checksum, reference);
            }
            reference
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn differs_from_hpccg_answer() {
        // Same grid and iteration count as an HPCCG run, but the FE matrix differs, so
        // the answers must differ — guarding against the two proxies degenerating into
        // the same computation.
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let fe = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        let cg = cluster.run(|ctx| {
            let app = crate::hpccg::Hpccg::new(crate::hpccg::HpccgParams::new(5, 5, 5, 10));
            run_standalone(&app, ctx, CheckpointStore::shared(), FtiConfig::default())
        });
        assert_ne!(fe.value_of(0).checksum, cg.value_of(0).checksum);
    }
}
