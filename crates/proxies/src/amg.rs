//! AMG: an algebraic multigrid solver proxy.
//!
//! The original AMG proxy is built on HYPRE's BoomerAMG and solves an anisotropic
//! Laplace problem. This re-implementation keeps the multigrid structure — a hierarchy
//! of grids, smoothing on each level, restriction of the residual, a coarse solve and
//! prolongation of the correction — as a geometric multigrid V-cycle on a 3D Laplace
//! (7-point) problem with semi-coarsening in the x/y plane, so that the one-dimensional
//! z decomposition across ranks is preserved on every level and each level performs its
//! own halo exchanges.
//!
//! Each outer iteration of the main loop is one V-cycle followed by an all-reduce of
//! the residual norm; FTI protects the fine-level solution, the iteration counter and
//! the current residual norm.

use fti::{Fti, Protectable};
use mpisim::{Comm, MpiError, RankCtx};
use recovery::FaultInjector;

use crate::common::{checksum, distributed_norm2, halo_exchange, world_slab, AppOutput, ProxyApp};

/// AMG parameters: per-process fine-grid dimensions (from `-n nx ny nz`) and the
/// number of V-cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmgParams {
    /// Fine-grid points per process in x.
    pub nx: usize,
    /// Fine-grid points per process in y.
    pub ny: usize,
    /// Fine-grid points per process in z.
    pub nz: usize,
    /// Number of V-cycles (outer iterations).
    pub cycles: u64,
    /// Pre-/post-smoothing sweeps per level.
    pub smoothing_sweeps: usize,
}

impl AmgParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or no cycles are requested.
    pub fn new(nx: usize, ny: usize, nz: usize, cycles: u64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        assert!(cycles > 0, "need at least one V-cycle");
        AmgParams {
            nx,
            ny,
            nz,
            cycles,
            smoothing_sweeps: 2,
        }
    }

    /// Fine-grid points per process.
    pub fn local_points(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// The grid hierarchy produced by halving x and y until either drops below 4.
    pub fn levels(&self) -> Vec<(usize, usize, usize)> {
        let mut levels = vec![(self.nx, self.ny, self.nz)];
        let (mut nx, mut ny) = (self.nx, self.ny);
        while nx >= 8 && ny >= 8 {
            nx /= 2;
            ny /= 2;
            levels.push((nx, ny, self.nz));
        }
        levels
    }
}

/// A per-level grid helper.
#[derive(Debug, Clone, Copy)]
struct Level {
    nx: usize,
    ny: usize,
    nz: usize,
}

impl Level {
    fn n(&self) -> usize {
        self.nx * self.ny * self.nz
    }
    fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.ny + iy) * self.nx + ix
    }
}

/// The AMG proxy application.
#[derive(Debug, Clone)]
pub struct Amg {
    params: AmgParams,
}

impl Amg {
    /// Creates an AMG instance.
    pub fn new(params: AmgParams) -> Self {
        Amg { params }
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &AmgParams {
        &self.params
    }

    /// 7-point Laplace residual `r = b - A x` on one level, with z-halo exchange.
    fn residual(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        level: Level,
        x: &[f64],
        b: &[f64],
        r: &mut [f64],
    ) -> Result<(), MpiError> {
        let plane = level.nx * level.ny;
        let bottom = x[..plane].to_vec();
        let top = x[x.len() - plane..].to_vec();
        let (below, above) = halo_exchange(ctx, comm, 31, &bottom, &top)?;
        let mut flops = 0.0;
        for iz in 0..level.nz {
            for iy in 0..level.ny {
                for ix in 0..level.nx {
                    let c = level.idx(ix, iy, iz);
                    let mut ax = 6.0 * x[c];
                    if ix > 0 {
                        ax -= x[level.idx(ix - 1, iy, iz)];
                    }
                    if ix + 1 < level.nx {
                        ax -= x[level.idx(ix + 1, iy, iz)];
                    }
                    if iy > 0 {
                        ax -= x[level.idx(ix, iy - 1, iz)];
                    }
                    if iy + 1 < level.ny {
                        ax -= x[level.idx(ix, iy + 1, iz)];
                    }
                    if iz > 0 {
                        ax -= x[level.idx(ix, iy, iz - 1)];
                    } else if !below.is_empty() {
                        ax -= below[iy * level.nx + ix];
                    }
                    if iz + 1 < level.nz {
                        ax -= x[level.idx(ix, iy, iz + 1)];
                    } else if !above.is_empty() {
                        ax -= above[iy * level.nx + ix];
                    }
                    r[c] = b[c] - ax;
                    flops += 14.0;
                }
            }
        }
        ctx.compute(flops);
        Ok(())
    }

    /// Weighted-Jacobi smoothing sweeps on one level.
    fn smooth(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        level: Level,
        x: &mut [f64],
        b: &[f64],
        sweeps: usize,
    ) -> Result<(), MpiError> {
        let omega = 0.8;
        let mut r = vec![0.0; level.n()];
        for _ in 0..sweeps {
            self.residual(ctx, comm, level, x, b, &mut r)?;
            for (xi, ri) in x.iter_mut().zip(&r) {
                *xi += omega * ri / 6.0;
            }
            ctx.compute(3.0 * level.n() as f64);
        }
        Ok(())
    }

    /// Restriction: average 2×2 blocks of the x/y plane (z is not coarsened).
    fn restrict(&self, fine: Level, coarse: Level, r: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; coarse.n()];
        for iz in 0..coarse.nz {
            for iy in 0..coarse.ny {
                for ix in 0..coarse.nx {
                    let fx = (2 * ix).min(fine.nx - 1);
                    let fy = (2 * iy).min(fine.ny - 1);
                    let fx1 = (2 * ix + 1).min(fine.nx - 1);
                    let fy1 = (2 * iy + 1).min(fine.ny - 1);
                    out[coarse.idx(ix, iy, iz)] = 0.25
                        * (r[fine.idx(fx, fy, iz)]
                            + r[fine.idx(fx1, fy, iz)]
                            + r[fine.idx(fx, fy1, iz)]
                            + r[fine.idx(fx1, fy1, iz)]);
                }
            }
        }
        out
    }

    /// Prolongation: piecewise-constant interpolation back to the fine x/y plane,
    /// added as a correction.
    fn prolong_add(&self, fine: Level, coarse: Level, e: &[f64], x: &mut [f64]) {
        for iz in 0..fine.nz {
            for iy in 0..fine.ny {
                for ix in 0..fine.nx {
                    let cx = (ix / 2).min(coarse.nx - 1);
                    let cy = (iy / 2).min(coarse.ny - 1);
                    x[fine.idx(ix, iy, iz)] += e[coarse.idx(cx, cy, iz)];
                }
            }
        }
    }

    /// One V-cycle starting at `level_idx`.
    fn v_cycle(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        levels: &[Level],
        level_idx: usize,
        x: &mut [f64],
        b: &[f64],
    ) -> Result<(), MpiError> {
        let level = levels[level_idx];
        let sweeps = self.params.smoothing_sweeps;
        if level_idx + 1 == levels.len() {
            // Coarsest level: smooth harder instead of a direct solve.
            self.smooth(ctx, comm, level, x, b, sweeps * 4)?;
            return Ok(());
        }
        self.smooth(ctx, comm, level, x, b, sweeps)?;
        let mut r = vec![0.0; level.n()];
        self.residual(ctx, comm, level, x, b, &mut r)?;
        let coarse = levels[level_idx + 1];
        let rc = self.restrict(level, coarse, &r);
        ctx.compute(coarse.n() as f64 * 4.0);
        let mut ec = vec![0.0; coarse.n()];
        self.v_cycle(ctx, comm, levels, level_idx + 1, &mut ec, &rc)?;
        self.prolong_add(level, coarse, &ec, x);
        ctx.compute(level.n() as f64);
        self.smooth(ctx, comm, level, x, b, sweeps)?;
        Ok(())
    }
}

impl ProxyApp for Amg {
    fn name(&self) -> &'static str {
        "AMG"
    }

    fn iterations(&self) -> u64 {
        self.params.cycles
    }

    fn global_units(&self, initial_ranks: usize) -> u64 {
        // One unit = one fine-grid x/y plane; z is never coarsened, so the same slab
        // boundaries apply on every level of the hierarchy.
        (self.params.nz * initial_ranks) as u64
    }

    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError> {
        let world = ctx.world();
        let global_nz = self.global_units(ctx.topology().nranks()) as usize;
        let (z_start, local_nz) = world_slab(&world, global_nz);
        // The per-level z extent is the rank's current slab of the global z axis;
        // semi-coarsening only halves x/y, so the slab is the same on every level.
        let levels: Vec<Level> = self
            .params
            .levels()
            .into_iter()
            .map(|(nx, ny, _)| Level {
                nx,
                ny,
                nz: local_nz,
            })
            .collect();
        let fine = levels[0];
        let n = fine.n();

        // Anisotropic-ish right-hand side: a smooth bump defined by the *global* grid
        // index, so that after a shrink the survivors reproduce exactly the forcing of
        // the planes they adopt.
        let plane = fine.nx * fine.ny;
        let b: Vec<f64> = (0..n)
            .map(|i| {
                let g = z_start * plane + i;
                let phase = (g % 17) as f64 / 17.0;
                1.0 + 0.5 * (phase * std::f64::consts::TAU).sin()
            })
            .collect();

        let mut x = vec![0.0f64; n];
        let mut iteration: u64 = 0;
        let mut resnorm: f64 = f64::MAX;

        fti.protect_partitioned(0, "x", &x, global_nz as u64);
        fti.protect(1, "iteration", &iteration);
        fti.protect(2, "resnorm", &resnorm);
        if fti.status().is_restart() {
            fti.recover(
                ctx,
                &mut [
                    (0, &mut x as &mut dyn Protectable),
                    (1, &mut iteration as &mut dyn Protectable),
                    (2, &mut resnorm as &mut dyn Protectable),
                ],
            )?;
        }

        let mut r = vec![0.0f64; n];
        while iteration < self.params.cycles {
            let current = iteration + 1;
            injector.maybe_fail(ctx, current)?;

            self.v_cycle(ctx, &world, &levels, 0, &mut x, &b)?;
            self.residual(ctx, &world, fine, &x, &b, &mut r)?;
            resnorm = distributed_norm2(ctx, &world, &r)?.sqrt();
            iteration = current;

            if fti.should_checkpoint(iteration) {
                fti.checkpoint(
                    ctx,
                    iteration,
                    &[
                        (0, &x as &dyn Protectable),
                        (1, &iteration as &dyn Protectable),
                        (2, &resnorm as &dyn Protectable),
                    ],
                )?;
            }
        }

        fti.finalize(ctx)?;
        let local = checksum(&x);
        let global = ctx.allreduce_sum_f64(&world, local)?;
        Ok(AppOutput {
            app: self.name(),
            iterations: iteration,
            checksum: global,
            figure_of_merit: resnorm,
            owned_units: (z_start as u64, local_nz as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    fn small() -> Amg {
        Amg::new(AmgParams::new(16, 16, 4, 8))
    }

    #[test]
    fn level_hierarchy_halves_xy_only() {
        let p = AmgParams::new(32, 32, 4, 1);
        let levels = p.levels();
        assert_eq!(levels[0], (32, 32, 4));
        assert_eq!(levels[1], (16, 16, 4));
        assert_eq!(levels[2], (8, 8, 4));
        assert_eq!(levels.last().unwrap(), &(4, 4, 4));
        assert_eq!(p.local_points(), 32 * 32 * 4);
    }

    #[test]
    fn multigrid_reduces_the_residual_fast() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let outcome = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        assert!(outcome.all_ok(), "{:?}", outcome.errors());
        let out = outcome.value_of(0);
        assert_eq!(out.app, "AMG");
        assert_eq!(out.iterations, 8);
        // Eight V-cycles on a diagonally dominant Laplace problem reduce the residual
        // norm far below the initial right-hand-side norm (which is O(sqrt(n)) ≈ 45).
        assert!(
            out.figure_of_merit < 5.0,
            "residual {}",
            out.figure_of_merit
        );
    }

    #[test]
    fn deterministic_and_consistent_across_ranks() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok());
            let reference = outcome.value_of(0).checksum;
            for r in outcome.ranks() {
                assert_eq!(r.result.as_ref().unwrap().checksum, reference);
            }
            reference
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn restriction_and_prolongation_shapes() {
        let app = small();
        let fine = Level {
            nx: 8,
            ny: 8,
            nz: 2,
        };
        let coarse = Level {
            nx: 4,
            ny: 4,
            nz: 2,
        };
        let r: Vec<f64> = (0..fine.n()).map(|i| i as f64).collect();
        let rc = app.restrict(fine, coarse, &r);
        assert_eq!(rc.len(), coarse.n());
        let mut x = vec![0.0; fine.n()];
        app.prolong_add(fine, coarse, &rc, &mut x);
        // Prolongation of a non-zero coarse grid must touch every fine point.
        assert!(x.iter().all(|v| *v != 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_cycles_panics() {
        let _ = AmgParams::new(4, 4, 4, 0);
    }
}
