//! Shared infrastructure for the proxy applications.

use fti::Fti;
use mpisim::{Comm, MpiError, RankCtx};
use recovery::FaultInjector;

/// The three input problem sizes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// The default input problem.
    Small,
    /// The medium input problem.
    Medium,
    /// The large input problem.
    Large,
}

impl InputSize {
    /// All sizes in the order the paper's figures use.
    pub const ALL: [InputSize; 3] = [InputSize::Small, InputSize::Medium, InputSize::Large];

    /// The display name used in the figures ("Small" / "Medium" / "Large").
    pub fn name(&self) -> &'static str {
        match self {
            InputSize::Small => "Small",
            InputSize::Medium => "Medium",
            InputSize::Large => "Large",
        }
    }

    /// The linear scale factor of this size relative to small (Table I roughly doubles
    /// and triples the linear extent from small to medium to large).
    pub fn linear_factor(&self) -> f64 {
        match self {
            InputSize::Small => 1.0,
            InputSize::Medium => 2.0,
            InputSize::Large => 3.0,
        }
    }
}

impl std::fmt::Display for InputSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result a proxy application returns from one (possibly recovered) run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutput {
    /// Application name.
    pub app: &'static str,
    /// Number of main-loop iterations executed (after the final restart, this is the
    /// total logical iteration count of the algorithm).
    pub iterations: u64,
    /// A deterministic checksum of the final state. Recovered runs must reproduce the
    /// failure-free checksum exactly.
    pub checksum: f64,
    /// An application-specific quality metric (final residual norm, total energy,
    /// modularity, ...).
    pub figure_of_merit: f64,
    /// The half-open range `(start, count)` of global partition units this rank owned
    /// when it finished (z-planes, x-slabs or vertices, see
    /// [`ProxyApp::global_units`]). After a shrinking recovery the survivors' ranges
    /// must exactly tile `0..global_units`.
    pub owned_units: (u64, u64),
}

/// A proxy application instance, parameterised by its input problem.
pub trait ProxyApp: Send + Sync {
    /// The application's name as used in the paper ("AMG", "CoMD", ...).
    fn name(&self) -> &'static str;

    /// The number of main-loop iterations this instance will execute.
    fn iterations(&self) -> u64;

    /// The number of global partition units the application block-decomposes over the
    /// *current* world communicator: z-planes for the stencil codes, x-slabs for CoMD,
    /// vertices for miniVite. The global problem is sized from `initial_ranks` (the
    /// machine's full rank count) so that a world shrunk by ULFM recovery continues on
    /// the *same* global domain, merely re-partitioned over the survivors.
    fn global_units(&self, initial_ranks: usize) -> u64;

    /// Runs the application main loop on this rank: compute, communicate, checkpoint
    /// through `fti`, and consult `injector` at the top of every iteration.
    ///
    /// # Errors
    ///
    /// Propagates every [`MpiError`] (including injected failures) to the caller,
    /// which is normally the `recovery::FtDriver`.
    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError>;
}

/// A 1-D block decomposition of `total` items over `parts` owners.
///
/// The first `total % parts` owners get one extra item, matching the usual MPI block
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPartition {
    total: usize,
    parts: usize,
}

impl BlockPartition {
    /// Creates a partition of `total` items over `parts` owners.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "cannot partition over zero owners");
        BlockPartition { total, parts }
    }

    /// Number of items owned by `part`.
    pub fn count(&self, part: usize) -> usize {
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        base + usize::from(part < extra)
    }

    /// First global index owned by `part`.
    pub fn start(&self, part: usize) -> usize {
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        part * base + part.min(extra)
    }

    /// The owner of global index `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        debug_assert!(idx < self.total);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let boundary = extra * (base + 1);
        if idx < boundary {
            idx / (base + 1)
        } else {
            extra + (idx - boundary) / base.max(1)
        }
    }

    /// Total number of items.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// The calling rank's slab of a globally sized 1-D block decomposition: `global_units`
/// units partitioned over the ranks of `comm`. Returns `(start, count)` in global
/// units. Matches `fti::block_range`, so data protected with
/// `Fti::protect_partitioned` lands exactly on these boundaries after a shrink.
pub fn world_slab(comm: &Comm, global_units: usize) -> (usize, usize) {
    let p = BlockPartition::new(global_units, comm.size());
    (p.start(comm.rank()), p.count(comm.rank()))
}

/// Exchanges boundary planes with the 1-D neighbours of this rank: sends `to_prev` to
/// rank-1 and `to_next` to rank+1, returns `(from_prev, from_next)` (empty vectors at
/// the domain boundaries).
///
/// # Errors
///
/// Propagates communication failures.
pub fn halo_exchange(
    ctx: &mut RankCtx,
    comm: &Comm,
    tag: i32,
    to_prev: &[f64],
    to_next: &[f64],
) -> Result<(Vec<f64>, Vec<f64>), MpiError> {
    let me = comm.rank();
    let n = comm.size();
    // Post sends first (eager), then receive: no deadlock because sends are buffered.
    if me > 0 {
        ctx.send_f64(comm, me - 1, tag, to_prev)?;
    }
    if me + 1 < n {
        ctx.send_f64(comm, me + 1, tag, to_next)?;
    }
    let from_prev = if me > 0 {
        ctx.recv_f64(comm, (me - 1) as i32, tag)?.1
    } else {
        Vec::new()
    };
    let from_next = if me + 1 < n {
        ctx.recv_f64(comm, (me + 1) as i32, tag)?.1
    } else {
        Vec::new()
    };
    Ok((from_prev, from_next))
}

/// Distributed dot product: the global sum of `sum(a[i] * b[i])` over all ranks.
///
/// # Errors
///
/// Propagates communication failures from the all-reduce.
///
/// # Panics
///
/// Panics if the local slices have different lengths.
pub fn distributed_dot(
    ctx: &mut RankCtx,
    comm: &Comm,
    a: &[f64],
    b: &[f64],
) -> Result<f64, MpiError> {
    assert_eq!(a.len(), b.len(), "dot product needs equal-length vectors");
    let local: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    ctx.compute(2.0 * a.len() as f64);
    ctx.allreduce_sum_f64(comm, local)
}

/// Distributed squared 2-norm of a vector.
///
/// # Errors
///
/// Propagates communication failures from the all-reduce.
pub fn distributed_norm2(ctx: &mut RankCtx, comm: &Comm, a: &[f64]) -> Result<f64, MpiError> {
    distributed_dot(ctx, comm, a, a)
}

/// A deterministic checksum over a float slice that is stable under the exact
/// reductions the applications perform (plain summation with alternating weights so
/// that permutations of values are distinguished).
pub fn checksum(values: &[f64]) -> f64 {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| v * (1.0 + (i % 7) as f64 * 0.125))
        .sum()
}

/// A tiny deterministic pseudo-random generator (xorshift*) used by the workload
/// generators so that every rank produces reproducible input data without depending on
/// iteration order of hash maps or on the `rand` crate's stability guarantees.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed (zero is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Convenience wrapper: runs `app` under the driver-free, failure-free path (used by
/// unit tests and examples that exercise an application without a fault-tolerance
/// design).
///
/// # Errors
///
/// Propagates application and communication errors.
pub fn run_standalone(
    app: &dyn ProxyApp,
    ctx: &mut RankCtx,
    store: std::sync::Arc<fti::store::CheckpointStore>,
    fti_config: fti::FtiConfig,
) -> Result<AppOutput, MpiError> {
    let mut fti = Fti::init(fti_config, store, ctx)?;
    let injector = FaultInjector::disabled();
    app.run(ctx, &mut fti, &injector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{Cluster, ClusterConfig};

    #[test]
    fn input_size_properties() {
        assert_eq!(InputSize::Small.name(), "Small");
        assert_eq!(InputSize::Large.to_string(), "Large");
        assert!(InputSize::Medium.linear_factor() > InputSize::Small.linear_factor());
        assert_eq!(InputSize::ALL.len(), 3);
    }

    #[test]
    fn block_partition_covers_everything_exactly_once() {
        for (total, parts) in [(10, 3), (7, 7), (100, 8), (5, 10), (0, 4)] {
            let p = BlockPartition::new(total, parts);
            let mut covered = 0;
            for part in 0..parts {
                assert_eq!(p.start(part), covered);
                covered += p.count(part);
            }
            assert_eq!(covered, total);
            for idx in 0..total {
                let owner = p.owner(idx);
                assert!(idx >= p.start(owner) && idx < p.start(owner) + p.count(owner));
            }
        }
    }

    #[test]
    fn halo_exchange_passes_planes_between_neighbours() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(4));
        let outcome = cluster.run(|ctx| {
            let world = ctx.world();
            let me = world.rank() as f64;
            let (from_prev, from_next) =
                halo_exchange(ctx, &world, 5, &[me * 10.0], &[me * 10.0 + 1.0])?;
            Ok((from_prev, from_next))
        });
        assert!(outcome.all_ok());
        // Rank 1 receives rank 0's "to_next" (1.0) and rank 2's "to_prev" (20.0).
        let (prev, next) = outcome.value_of(1);
        assert_eq!(prev, &vec![1.0]);
        assert_eq!(next, &vec![20.0]);
        // Domain boundaries receive nothing from outside.
        let (prev0, _) = outcome.value_of(0);
        assert!(prev0.is_empty());
        let (_, next3) = outcome.value_of(3);
        assert!(next3.is_empty());
    }

    #[test]
    fn distributed_dot_matches_serial() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(4));
        let outcome = cluster.run(|ctx| {
            let world = ctx.world();
            let a = vec![(ctx.rank() + 1) as f64; 3];
            let b = vec![2.0; 3];
            distributed_dot(ctx, &world, &a, &b)
        });
        // sum over ranks of 3 * (rank+1) * 2 = 6 * (1+2+3+4) = 60.
        for r in outcome.results() {
            assert_eq!(*r.as_ref().unwrap(), 60.0);
        }
    }

    #[test]
    fn checksum_distinguishes_permutations() {
        let a = checksum(&[1.0, 2.0, 3.0]);
        let b = checksum(&[3.0, 2.0, 1.0]);
        assert_ne!(a, b);
        assert_eq!(checksum(&[]), 0.0);
    }

    #[test]
    fn det_rng_is_deterministic_and_in_range() {
        let mut a = DetRng::new(12345);
        let mut b = DetRng::new(12345);
        for _ in 0..100 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!((0.0..1.0).contains(&x));
            let i = a.next_below(10);
            let _ = b.next_below(10);
            assert!(i < 10);
        }
        let mut c = DetRng::new(0);
        assert!(c.next_f64().is_finite());
    }

    #[test]
    #[should_panic]
    fn dot_with_mismatched_lengths_panics() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(1));
        let _ = cluster.run(|ctx| {
            let world = ctx.world();
            distributed_dot(ctx, &world, &[1.0], &[1.0, 2.0])
        });
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every block partition covers each index exactly once and the owner lookup is
        /// consistent with the ranges.
        #[test]
        fn block_partition_is_a_partition(total in 0usize..5000, parts in 1usize..64) {
            let p = BlockPartition::new(total, parts);
            let mut covered = 0;
            for part in 0..parts {
                prop_assert_eq!(p.start(part), covered);
                covered += p.count(part);
            }
            prop_assert_eq!(covered, total);
            if total > 0 {
                let idx = total / 2;
                let owner = p.owner(idx);
                prop_assert!(idx >= p.start(owner));
                prop_assert!(idx < p.start(owner) + p.count(owner));
            }
        }

        /// The deterministic RNG always produces values in range.
        #[test]
        fn det_rng_ranges(seed in any::<u64>(), bound in 1usize..1000) {
            let mut rng = DetRng::new(seed);
            for _ in 0..10 {
                let f = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(rng.next_below(bound) < bound);
            }
        }
    }
}
