//! # proxies — the six MATCH proxy applications
//!
//! MATCH builds its benchmark suite from six HPC proxy applications drawn from the ECP
//! proxy-app suite and the LLNL ASC proxy-app suite. This crate re-implements the core
//! computational pattern of each of them in Rust, on top of the simulated MPI runtime
//! (`mpisim`), instrumented with FTI checkpointing and the fault-injection hook exactly
//! as the paper describes (Figs. 1–4):
//!
//! | Proxy | Domain | Pattern |
//! |-------|--------|---------|
//! | [`amg`]      | algebraic multigrid | geometric multigrid V-cycles on a 3D Laplace problem |
//! | [`comd`]     | molecular dynamics  | Lennard-Jones link cells, velocity Verlet, halo exchange |
//! | [`hpccg`]    | conjugate gradient  | 27-point-stencil sparse CG in a 3D chimney domain |
//! | [`lulesh`]   | shock hydrodynamics | explicit Lagrangian time steps of a Sedov blast |
//! | [`minife`]   | implicit finite elements | FE assembly + CG solve |
//! | [`minivite`] | graph analytics     | one phase of distributed Louvain community detection |
//!
//! Every application:
//!
//! * decomposes its domain across the MPI ranks and exchanges halo/boundary data with
//!   neighbouring ranks every iteration,
//! * performs at least one collective per iteration (residual norms, energy sums,
//!   modularity), which is what lets an injected process failure propagate,
//! * protects its cross-iteration state with FTI following the paper's three
//!   principles (defined before the loop, used across iterations, varying across
//!   iterations), and
//! * returns an [`AppOutput`] with a deterministic checksum, so integration tests can
//!   verify that a run recovered from a failure reproduces the failure-free answer
//!   bit-for-bit.
//!
//! The [`registry`] module maps the paper's Table I configurations (small / medium /
//! large inputs per application) onto these implementations and provides an
//! execution-scale knob so that the full evaluation matrix regenerates quickly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod amg;
pub mod comd;
pub mod common;
pub mod hpccg;
pub mod lulesh;
pub mod minife;
pub mod minivite;
pub mod registry;

pub use common::{AppOutput, InputSize, ProxyApp};
pub use registry::{ProxyKind, ProxySpec};
