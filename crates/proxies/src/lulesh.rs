//! LULESH: a shock-hydrodynamics proxy (Sedov blast).
//!
//! LULESH solves the Sedov blast problem with an explicit Lagrangian hydrodynamics
//! scheme on an unstructured hexahedral mesh. The re-implementation keeps the
//! per-time-step structure that dominates its execution and communication behaviour:
//!
//! 1. a globally agreed time-step computed from a per-element Courant constraint
//!    (an all-reduce minimum every step),
//! 2. a halo exchange of boundary-plane element state with the z neighbours,
//! 3. a stress/pressure update, an artificial-viscosity term and an energy update per
//!    element, followed by a volume update, and
//! 4. a periodic global energy balance check (all-reduce sum).
//!
//! The element state (energy, pressure, relative volume, velocity proxy), the
//! simulation time and the step counter are the FTI-protected objects.

use fti::{Fti, Protectable};
use mpisim::{MpiError, RankCtx};
use recovery::FaultInjector;

use crate::common::{checksum, halo_exchange, world_slab, AppOutput, ProxyApp};

/// Ideal-gas constant for the equation of state.
const GAMMA: f64 = 1.4;
/// Artificial viscosity coefficient.
const Q_COEF: f64 = 0.1;
/// Courant factor.
const CFL: f64 = 0.45;

/// LULESH parameters: the per-process edge size `s` (from `-s`, the mesh is `s³`
/// elements per rank) and the number of time steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuleshParams {
    /// Elements per process along each edge.
    pub s: usize,
    /// Number of Lagrange time steps.
    pub steps: u64,
}

impl LuleshParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero or no steps are requested.
    pub fn new(s: usize, steps: u64) -> Self {
        assert!(s > 0, "edge size must be positive");
        assert!(steps > 0, "need at least one step");
        LuleshParams { s, steps }
    }

    /// Elements per process.
    pub fn local_elements(&self) -> usize {
        self.s * self.s * self.s
    }
}

/// The LULESH proxy application.
#[derive(Debug, Clone)]
pub struct Lulesh {
    params: LuleshParams,
}

impl Lulesh {
    /// Creates a LULESH instance.
    pub fn new(params: LuleshParams) -> Self {
        Lulesh { params }
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &LuleshParams {
        &self.params
    }

    fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        let s = self.params.s;
        (iz * s + iy) * s + ix
    }
}

impl ProxyApp for Lulesh {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn iterations(&self) -> u64 {
        self.params.steps
    }

    fn global_units(&self, initial_ranks: usize) -> u64 {
        // One unit = one s x s element plane of the global column of cubes.
        (self.params.s * initial_ranks) as u64
    }

    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError> {
        let world = ctx.world();
        let s = self.params.s;
        let global_nz = self.global_units(ctx.topology().nranks()) as usize;
        let (z_start, local_nz) = world_slab(&world, global_nz);
        let n = s * s * local_nz;
        let plane = s * s;

        // Element state: specific internal energy, pressure, relative volume and a
        // scalar "velocity divergence" proxy driving the volume change.
        let mut energy = vec![1.0e-6f64; n];
        let mut pressure = vec![0.0f64; n];
        let mut volume = vec![1.0f64; n];
        let mut divergence = vec![0.0f64; n];
        let mut sim_time = 0.0f64;
        let mut step: u64 = 0;

        // The Sedov blast: deposit a large point energy in the corner element of the
        // global mesh — whichever rank currently owns global z-plane 0.
        if z_start == 0 {
            energy[self.idx(0, 0, 0)] = 3.948746e+7;
        }

        fti.protect_partitioned(0, "energy", &energy, global_nz as u64);
        fti.protect_partitioned(1, "pressure", &pressure, global_nz as u64);
        fti.protect_partitioned(2, "volume", &volume, global_nz as u64);
        fti.protect_partitioned(3, "divergence", &divergence, global_nz as u64);
        fti.protect(4, "time", &sim_time);
        fti.protect(5, "step", &step);
        if fti.status().is_restart() {
            fti.recover(
                ctx,
                &mut [
                    (0, &mut energy as &mut dyn Protectable),
                    (1, &mut pressure as &mut dyn Protectable),
                    (2, &mut volume as &mut dyn Protectable),
                    (3, &mut divergence as &mut dyn Protectable),
                    (4, &mut sim_time as &mut dyn Protectable),
                    (5, &mut step as &mut dyn Protectable),
                ],
            )?;
        }

        while step < self.params.steps {
            let current = step + 1;
            injector.maybe_fail(ctx, current)?;

            // 1. Time-step control: Courant constraint over all elements of all ranks.
            let mut local_dt = f64::MAX;
            for e in 0..n {
                let sound_speed = (GAMMA * (pressure[e] + 1e-12) / volume[e].max(1e-9)).sqrt();
                let dt = CFL / (sound_speed + 1e-6);
                local_dt = local_dt.min(dt);
            }
            ctx.compute(6.0 * n as f64);
            let dt = ctx.allreduce_min_f64(&world, local_dt)?.min(1.0e-2);

            // 2. Halo exchange of the boundary planes of the energy field.
            let bottom = energy[..plane].to_vec();
            let top = energy[n - plane..].to_vec();
            let (below, above) = halo_exchange(ctx, &world, 51, &bottom, &top)?;

            // 3. Element updates: pressure from the equation of state, an artificial
            //    viscosity from the energy gradient to the z neighbours, and the energy
            //    / volume update.
            let mut flops = 0.0;
            for iz in 0..local_nz {
                for iy in 0..s {
                    for ix in 0..s {
                        let e = self.idx(ix, iy, iz);
                        pressure[e] = (GAMMA - 1.0) * energy[e] / volume[e].max(1e-9);
                        let e_below = if iz > 0 {
                            energy[self.idx(ix, iy, iz - 1)]
                        } else if !below.is_empty() {
                            below[iy * s + ix]
                        } else {
                            energy[e]
                        };
                        let e_above = if iz + 1 < local_nz {
                            energy[self.idx(ix, iy, iz + 1)]
                        } else if !above.is_empty() {
                            above[iy * s + ix]
                        } else {
                            energy[e]
                        };
                        let grad = (e_above - e_below) * 0.5;
                        let q = Q_COEF * grad.abs();
                        divergence[e] = -(pressure[e] + q) * 1e-4;
                        // Work done on / by the element changes its energy and volume.
                        energy[e] = (energy[e] + dt * divergence[e] * (pressure[e] + q)).max(0.0);
                        volume[e] = (volume[e] + dt * divergence[e]).clamp(0.05, 20.0);
                        flops += 22.0;
                    }
                }
            }
            ctx.compute(flops);

            // 4. Energy balance check (every step; the original does it for reporting).
            let local_energy: f64 = energy.iter().sum();
            ctx.compute(n as f64);
            let _total = ctx.allreduce_sum_f64(&world, local_energy)?;

            sim_time += dt;
            step = current;

            if fti.should_checkpoint(step) {
                fti.checkpoint(
                    ctx,
                    step,
                    &[
                        (0, &energy as &dyn Protectable),
                        (1, &pressure as &dyn Protectable),
                        (2, &volume as &dyn Protectable),
                        (3, &divergence as &dyn Protectable),
                        (4, &sim_time as &dyn Protectable),
                        (5, &step as &dyn Protectable),
                    ],
                )?;
            }
        }

        fti.finalize(ctx)?;
        let local = checksum(&energy) + checksum(&volume);
        let global = ctx.allreduce_sum_f64(&world, local)?;
        let total_energy = ctx.allreduce_sum_f64(&world, energy.iter().sum())?;
        Ok(AppOutput {
            app: self.name(),
            iterations: step,
            checksum: global,
            figure_of_merit: total_energy,
            owned_units: (z_start as u64, local_nz as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    fn small() -> Lulesh {
        Lulesh::new(LuleshParams::new(6, 12))
    }

    #[test]
    fn element_counts() {
        assert_eq!(LuleshParams::new(30, 10).local_elements(), 27_000);
    }

    #[test]
    fn sedov_blast_evolves_and_stays_finite() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let outcome = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        assert!(outcome.all_ok(), "{:?}", outcome.errors());
        let out = outcome.value_of(0);
        assert_eq!(out.app, "LULESH");
        assert_eq!(out.iterations, 12);
        assert!(out.figure_of_merit.is_finite());
        assert!(out.figure_of_merit > 0.0, "the blast energy cannot vanish");
        assert!(out.checksum.is_finite());
    }

    #[test]
    fn deterministic_and_rank_consistent() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok());
            let reference = outcome.value_of(0).checksum;
            for r in outcome.ranks() {
                assert_eq!(r.result.as_ref().unwrap().checksum, reference);
            }
            reference
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn blast_energy_spreads_from_rank_zero() {
        // After a few steps the ranks adjacent to the blast see a different state than
        // a run without the blast would produce, demonstrating that the halo exchange
        // really carries information across ranks.
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let outcome = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        let with_blast = outcome.value_of(0).checksum;
        assert!(with_blast.is_finite());
        assert!(with_blast != 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_edge_panics() {
        let _ = LuleshParams::new(0, 1);
    }
}
