//! miniVite: a distributed Louvain community-detection proxy.
//!
//! miniVite executes the first phase of the distributed Louvain method for graph
//! community detection: vertices are distributed block-wise over the ranks, every
//! vertex starts in its own community, and in each iteration every vertex greedily
//! moves to the neighbouring community with the largest modularity gain. The iteration
//! stops when the global number of moves falls below a threshold (or a cap is reached).
//!
//! The communication pattern per iteration is collective-heavy, like the original:
//! an all-gather of the updated community assignment of every vertex (so that remote
//! neighbours can be resolved) and an all-reduce of the per-community degree sums and
//! of the move count / modularity.
//!
//! FTI protects the community assignment and the iteration counter.

use fti::{Fti, Protectable};
use mpisim::{MpiError, RankCtx};
use recovery::FaultInjector;

use crate::common::{AppOutput, BlockPartition, DetRng, ProxyApp};

/// miniVite parameters: the number of generated graph vertices (`-n`), the average
/// vertex degree and the iteration cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiniViteParams {
    /// Number of vertices in the generated graph.
    pub vertices: usize,
    /// Average out-degree of the generated graph.
    pub avg_degree: usize,
    /// Maximum number of Louvain iterations.
    pub max_iterations: u64,
}

impl MiniViteParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the vertex count or degree is zero, or no iterations are requested.
    pub fn new(vertices: usize, avg_degree: usize, max_iterations: u64) -> Self {
        assert!(vertices > 0, "need at least one vertex");
        assert!(avg_degree > 0, "need a positive average degree");
        assert!(max_iterations > 0, "need at least one iteration");
        MiniViteParams {
            vertices,
            avg_degree,
            max_iterations,
        }
    }
}

/// The miniVite proxy application.
#[derive(Debug, Clone)]
pub struct MiniVite {
    params: MiniViteParams,
}

impl MiniVite {
    /// Creates a miniVite instance.
    pub fn new(params: MiniViteParams) -> Self {
        MiniVite { params }
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &MiniViteParams {
        &self.params
    }

    /// Generates this rank's adjacency lists. The generator mixes ring edges (to give
    /// the graph obvious community structure) with random long-range edges, and is
    /// deterministic in the vertex id so that every rank could regenerate any vertex's
    /// edges — which also means regenerating after a restart reproduces the same graph.
    fn generate_local_graph(&self, partition: &BlockPartition, rank: usize) -> Vec<Vec<usize>> {
        let v_start = partition.start(rank);
        let v_count = partition.count(rank);
        let total = self.params.vertices;
        let mut adjacency = Vec::with_capacity(v_count);
        for local in 0..v_count {
            let v = v_start + local;
            let mut rng = DetRng::new(0xB00B5 ^ (v as u64).wrapping_mul(0x9E37_79B9));
            let mut edges = Vec::with_capacity(self.params.avg_degree);
            // Ring edges keep nearby vertices densely connected.
            edges.push((v + 1) % total);
            edges.push((v + total - 1) % total);
            // Random long-range edges.
            for _ in 2..self.params.avg_degree {
                let mut target = rng.next_below(total);
                if target == v {
                    target = (target + 1) % total;
                }
                edges.push(target);
            }
            edges.sort_unstable();
            edges.dedup();
            adjacency.push(edges);
        }
        adjacency
    }
}

impl ProxyApp for MiniVite {
    fn name(&self) -> &'static str {
        "miniVite"
    }

    fn iterations(&self) -> u64 {
        self.params.max_iterations
    }

    fn global_units(&self, _initial_ranks: usize) -> u64 {
        // One unit = one vertex; the generated graph is globally sized already.
        self.params.vertices as u64
    }

    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError> {
        let world = ctx.world();
        let total = self.params.vertices;
        // Vertices are partitioned over the current world: after a shrink the
        // survivors re-divide the same graph, and because the generator is
        // deterministic in the vertex id they can regenerate any adopted vertex's
        // edges locally.
        let partition = BlockPartition::new(total, world.size());
        let v_start = partition.start(world.rank());
        let v_count = partition.count(world.rank());

        let adjacency = self.generate_local_graph(&partition, world.rank());
        let edge_count: usize = adjacency.iter().map(Vec::len).sum();
        ctx.compute(edge_count as f64 * 3.0);
        // Total edge weight (2m in modularity terms), constant across iterations.
        let local_degree_sum: f64 = edge_count as f64;
        let two_m = ctx.allreduce_sum_f64(&world, local_degree_sum)?;

        // Community assignment of the local vertices (global labels).
        let mut communities: Vec<u64> = (v_start..v_start + v_count).map(|v| v as u64).collect();
        let mut iteration: u64 = 0;

        fti.protect_partitioned(0, "communities", &communities, total as u64);
        fti.protect(1, "iteration", &iteration);
        if fti.status().is_restart() {
            fti.recover(
                ctx,
                &mut [
                    (0, &mut communities as &mut dyn Protectable),
                    (1, &mut iteration as &mut dyn Protectable),
                ],
            )?;
        }

        let mut modularity = 0.0f64;
        while iteration < self.params.max_iterations {
            let current = iteration + 1;
            injector.maybe_fail(ctx, current)?;

            // 1. Share the community assignment of every vertex.
            let gathered = ctx.allgather_u64(&world, &communities)?;
            let mut global_communities: Vec<u64> = vec![0; total];
            for (owner, chunk) in gathered.iter().enumerate() {
                let start = partition.start(owner);
                global_communities[start..start + chunk.len()].copy_from_slice(chunk);
            }

            // 2. Per-community degree sums (the Louvain "sigma_tot"), globally reduced.
            let mut local_sigma = vec![0.0f64; total];
            for (local, edges) in adjacency.iter().enumerate() {
                let c = global_communities[v_start + local] as usize;
                local_sigma[c] += edges.len() as f64;
            }
            ctx.compute(v_count as f64 * 2.0);
            let sigma_tot = ctx.allreduce_f64(&world, mpisim::ctx::ReduceOp::Sum, &local_sigma)?;

            // 3. Greedy vertex moves.
            let mut moves = 0u64;
            let mut local_gain = 0.0f64;
            let mut flops = 0.0;
            for (local, edges) in adjacency.iter().enumerate() {
                let v = v_start + local;
                let my_degree = edges.len() as f64;
                let current_c = global_communities[v] as usize;
                // Count links into each neighbouring community.
                let mut best_c = current_c;
                let mut best_gain = 0.0f64;
                let mut links_current = 0.0;
                for &u in edges {
                    if global_communities[u] as usize == current_c && u != v {
                        links_current += 1.0;
                    }
                }
                for &u in edges {
                    let cand = global_communities[u] as usize;
                    if cand == current_c {
                        continue;
                    }
                    let links_cand = edges
                        .iter()
                        .filter(|&&w| global_communities[w] as usize == cand)
                        .count() as f64;
                    // Modularity gain of moving v from current_c to cand.
                    let gain = (links_cand - links_current) / two_m
                        - my_degree * (sigma_tot[cand] - sigma_tot[current_c] + my_degree)
                            / (two_m * two_m);
                    flops += 8.0 + edges.len() as f64;
                    if gain > best_gain + 1e-12 {
                        best_gain = gain;
                        best_c = cand;
                    }
                }
                if best_c != current_c {
                    communities[local] = best_c as u64;
                    moves += 1;
                    local_gain += best_gain;
                }
            }
            ctx.compute(flops);

            // 4. Global convergence check.
            let total_moves = ctx.allreduce_sum_u64(&world, moves)?;
            modularity += ctx.allreduce_sum_f64(&world, local_gain)?;
            iteration = current;

            if fti.should_checkpoint(iteration) {
                fti.checkpoint(
                    ctx,
                    iteration,
                    &[
                        (0, &communities as &dyn Protectable),
                        (1, &iteration as &dyn Protectable),
                    ],
                )?;
            }
            if total_moves == 0 {
                break;
            }
        }

        fti.finalize(ctx)?;
        let local_sum: f64 = communities.iter().map(|&c| c as f64 * 0.001).sum();
        let global = ctx.allreduce_sum_f64(&world, local_sum)?;
        Ok(AppOutput {
            app: self.name(),
            iterations: iteration,
            checksum: global,
            figure_of_merit: modularity,
            owned_units: (v_start as u64, v_count as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    fn small() -> MiniVite {
        MiniVite::new(MiniViteParams::new(256, 6, 10))
    }

    #[test]
    fn graph_generation_is_deterministic_and_covers_all_vertices() {
        let app = small();
        let partition = BlockPartition::new(256, 4);
        let a = app.generate_local_graph(&partition, 1);
        let b = app.generate_local_graph(&partition, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for edges in &a {
            assert!(!edges.is_empty());
            assert!(edges.iter().all(|&u| u < 256));
        }
    }

    #[test]
    fn louvain_finds_communities_and_improves_modularity() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(4));
        let outcome = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        assert!(outcome.all_ok(), "{:?}", outcome.errors());
        let out = outcome.value_of(0);
        assert_eq!(out.app, "miniVite");
        assert!(out.iterations >= 1);
        assert!(
            out.figure_of_merit > 0.0,
            "modularity gain must be positive"
        );
    }

    #[test]
    fn deterministic_and_rank_consistent() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok());
            let reference = outcome.value_of(0).checksum;
            for r in outcome.ranks() {
                assert_eq!(r.result.as_ref().unwrap().checksum, reference);
            }
            reference
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_rank_run_matches_multi_rank_run() {
        // The algorithm is deterministic and independent of the decomposition because
        // every move decision uses the full global community map of the previous
        // iteration.
        let run = |nranks| {
            let cluster = Cluster::new(ClusterConfig::with_ranks(nranks));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok());
            outcome.value_of(0).checksum
        };
        // The community structure is decomposition-independent; the checksum is a
        // floating-point sum whose association order differs, so compare with a small
        // relative tolerance.
        let single = run(1);
        let multi = run(4);
        assert!(
            ((single - multi) / single).abs() < 1e-9,
            "single-rank {single} vs multi-rank {multi}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_vertices_panics() {
        let _ = MiniViteParams::new(0, 4, 1);
    }
}
