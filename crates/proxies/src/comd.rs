//! CoMD: a molecular-dynamics proxy (Lennard-Jones).
//!
//! CoMD simulates particle motion with a Lennard-Jones potential using link cells and
//! velocity-Verlet time integration. The re-implementation keeps the computational
//! pattern: each rank owns a slab of the global simulation box (1-D decomposition along
//! x), builds link cells over its particles, exchanges a one-cell-wide strip of ghost
//! particles with its neighbours every step, computes short-range LJ forces from the
//! cell neighbourhood, integrates positions and velocities, and reduces the total
//! energy across ranks every step.
//!
//! FTI protects the particle positions, velocities and the step counter — the
//! cross-iteration state the paper's checkpoint-object analysis identifies.

use fti::{Fti, Protectable};
use mpisim::{Comm, MpiError, RankCtx};
use recovery::FaultInjector;

use crate::common::{checksum, world_slab, AppOutput, DetRng, ProxyApp};

/// Lennard-Jones cutoff radius in reduced units.
const CUTOFF: f64 = 2.5;
/// Lattice spacing of the initial configuration (slightly above the LJ minimum so the
/// system starts near equilibrium and stays numerically tame).
const LATTICE: f64 = 1.2;
/// Time step in reduced units.
const DT: f64 = 0.002;

/// CoMD parameters: the global lattice dimensions (`-nx -ny -nz`, one particle per
/// lattice site here) and the number of time steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComdParams {
    /// Global lattice sites in x.
    pub nx: usize,
    /// Global lattice sites in y.
    pub ny: usize,
    /// Global lattice sites in z.
    pub nz: usize,
    /// Number of velocity-Verlet steps.
    pub steps: u64,
}

impl ComdParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or no steps are requested.
    pub fn new(nx: usize, ny: usize, nz: usize, steps: u64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "lattice dimensions must be positive"
        );
        assert!(steps > 0, "need at least one step");
        ComdParams { nx, ny, nz, steps }
    }

    /// Total number of particles in the global box.
    pub fn global_particles(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// The CoMD proxy application.
#[derive(Debug, Clone)]
pub struct Comd {
    params: ComdParams,
}

impl Comd {
    /// Creates a CoMD instance.
    pub fn new(params: ComdParams) -> Self {
        Comd { params }
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &ComdParams {
        &self.params
    }

    /// Generates this rank's initial particles: lattice positions (with a small
    /// deterministic jitter) inside the rank's x-slab, and zero initial velocities.
    fn init_particles(&self, rank: usize, nranks: usize) -> (Vec<f64>, Vec<f64>, f64, f64) {
        let slab = crate::common::BlockPartition::new(self.params.nx, nranks);
        let x_start = slab.start(rank);
        let x_count = slab.count(rank);
        let mut rng = DetRng::new(0xC0FFEE ^ rank as u64);
        let mut positions = Vec::with_capacity(x_count * self.params.ny * self.params.nz * 3);
        for ix in 0..x_count {
            for iy in 0..self.params.ny {
                for iz in 0..self.params.nz {
                    let jitter = 0.05 * (rng.next_f64() - 0.5);
                    positions.push((x_start + ix) as f64 * LATTICE + jitter);
                    positions.push(iy as f64 * LATTICE + 0.05 * (rng.next_f64() - 0.5));
                    positions.push(iz as f64 * LATTICE + 0.05 * (rng.next_f64() - 0.5));
                }
            }
        }
        let velocities = vec![0.0; positions.len()];
        let slab_min = x_start as f64 * LATTICE;
        let slab_max = (x_start + x_count) as f64 * LATTICE;
        (positions, velocities, slab_min, slab_max)
    }

    /// Exchanges ghost particles (positions near the slab boundaries) with the x
    /// neighbours and returns them concatenated.
    fn exchange_ghosts(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        positions: &[f64],
        slab_min: f64,
        slab_max: f64,
    ) -> Result<Vec<f64>, MpiError> {
        let mut to_prev = Vec::new();
        let mut to_next = Vec::new();
        for p in positions.chunks_exact(3) {
            if p[0] < slab_min + CUTOFF {
                to_prev.extend_from_slice(p);
            }
            if p[0] > slab_max - CUTOFF {
                to_next.extend_from_slice(p);
            }
        }
        let me = comm.rank();
        let n = comm.size();
        if me > 0 {
            ctx.send_f64(comm, me - 1, 41, &to_prev)?;
        }
        if me + 1 < n {
            ctx.send_f64(comm, me + 1, 41, &to_next)?;
        }
        let mut ghosts = Vec::new();
        if me > 0 {
            ghosts.extend(ctx.recv_f64(comm, (me - 1) as i32, 41)?.1);
        }
        if me + 1 < n {
            ghosts.extend(ctx.recv_f64(comm, (me + 1) as i32, 41)?.1);
        }
        Ok(ghosts)
    }

    /// Computes Lennard-Jones forces and the local potential energy from the owned
    /// particles plus ghosts, using an O(n·m) neighbour scan over a cutoff (the link
    /// cells of the original are approximated by the cutoff test; the arithmetic per
    /// interacting pair is the real LJ kernel).
    fn compute_forces(
        &self,
        ctx: &mut RankCtx,
        positions: &[f64],
        ghosts: &[f64],
        forces: &mut [f64],
    ) -> f64 {
        let n = positions.len() / 3;
        forces.iter_mut().for_each(|f| *f = 0.0);
        let cutoff2 = CUTOFF * CUTOFF;
        let mut potential = 0.0;
        let mut flops = 0.0;
        let pair = |pi: &[f64], pj: &[f64]| -> Option<(f64, [f64; 3])> {
            let dx = pi[0] - pj[0];
            let dy = pi[1] - pj[1];
            let dz = pi[2] - pj[2];
            let r2 = dx * dx + dy * dy + dz * dz;
            if r2 >= cutoff2 || r2 < 1e-12 {
                return None;
            }
            let inv_r2 = 1.0 / r2;
            let inv_r6 = inv_r2 * inv_r2 * inv_r2;
            let inv_r12 = inv_r6 * inv_r6;
            // V = 4 (r^-12 - r^-6); F = 24 (2 r^-12 - r^-6) / r^2 * dr
            let energy = 4.0 * (inv_r12 - inv_r6);
            let scale = 24.0 * (2.0 * inv_r12 - inv_r6) * inv_r2;
            Some((energy, [scale * dx, scale * dy, scale * dz]))
        };
        // Owned-owned pairs (each counted once).
        for i in 0..n {
            let pi = &positions[3 * i..3 * i + 3];
            for j in (i + 1)..n {
                let pj = &positions[3 * j..3 * j + 3];
                flops += 12.0;
                if let Some((energy, f)) = pair(pi, pj) {
                    potential += energy;
                    for d in 0..3 {
                        forces[3 * i + d] += f[d];
                        forces[3 * j + d] -= f[d];
                    }
                    flops += 20.0;
                }
            }
            // Owned-ghost pairs (half the energy belongs to this rank).
            for pj in ghosts.chunks_exact(3) {
                flops += 12.0;
                if let Some((energy, f)) = pair(pi, pj) {
                    potential += 0.5 * energy;
                    for d in 0..3 {
                        forces[3 * i + d] += f[d];
                    }
                    flops += 12.0;
                }
            }
        }
        ctx.compute(flops);
        potential
    }
}

impl ProxyApp for Comd {
    fn name(&self) -> &'static str {
        "CoMD"
    }

    fn iterations(&self) -> u64 {
        self.params.steps
    }

    fn global_units(&self, _initial_ranks: usize) -> u64 {
        // CoMD's box is already globally sized: one unit = one x lattice plane of
        // ny x nz particles, regardless of how many ranks share it.
        self.params.nx as u64
    }

    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError> {
        let world = ctx.world();
        // The x slab is derived from the current world, so that after a shrink the
        // survivors split the same global box among themselves.
        let (x_start, x_count) = world_slab(&world, self.params.nx);
        let (mut positions, mut velocities, slab_min, slab_max) =
            self.init_particles(world.rank(), world.size());
        let mut step: u64 = 0;

        fti.protect_partitioned(0, "positions", &positions, self.params.nx as u64);
        fti.protect_partitioned(1, "velocities", &velocities, self.params.nx as u64);
        fti.protect(2, "step", &step);
        if fti.status().is_restart() {
            fti.recover(
                ctx,
                &mut [
                    (0, &mut positions as &mut dyn Protectable),
                    (1, &mut velocities as &mut dyn Protectable),
                    (2, &mut step as &mut dyn Protectable),
                ],
            )?;
        }

        let mut forces = vec![0.0f64; positions.len()];
        let mut total_energy = 0.0f64;
        while step < self.params.steps {
            let current = step + 1;
            injector.maybe_fail(ctx, current)?;

            let ghosts = self.exchange_ghosts(ctx, &world, &positions, slab_min, slab_max)?;
            let potential = self.compute_forces(ctx, &positions, &ghosts, &mut forces);

            // Velocity Verlet (mass = 1): a single force evaluation per step, using the
            // previous step's forces implicitly through the half-kick ordering.
            let mut kinetic = 0.0;
            for i in 0..velocities.len() {
                velocities[i] += DT * forces[i];
                positions[i] += DT * velocities[i];
                kinetic += 0.5 * velocities[i] * velocities[i];
            }
            ctx.compute(5.0 * velocities.len() as f64);

            total_energy = ctx.allreduce_sum_f64(&world, potential + kinetic)?;
            step = current;

            if fti.should_checkpoint(step) {
                fti.checkpoint(
                    ctx,
                    step,
                    &[
                        (0, &positions as &dyn Protectable),
                        (1, &velocities as &dyn Protectable),
                        (2, &step as &dyn Protectable),
                    ],
                )?;
            }
        }

        fti.finalize(ctx)?;
        let local = checksum(&positions) + checksum(&velocities);
        let global = ctx.allreduce_sum_f64(&world, local)?;
        Ok(AppOutput {
            app: self.name(),
            iterations: step,
            checksum: global,
            figure_of_merit: total_energy,
            owned_units: (x_start as u64, x_count as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    fn small() -> Comd {
        Comd::new(ComdParams::new(8, 4, 4, 10))
    }

    #[test]
    fn particle_counts() {
        assert_eq!(ComdParams::new(8, 4, 4, 1).global_particles(), 128);
    }

    #[test]
    fn particles_are_distributed_across_ranks() {
        let app = small();
        let (p0, v0, min0, max0) = app.init_particles(0, 4);
        let (p1, _, min1, _) = app.init_particles(1, 4);
        assert_eq!(p0.len(), 2 * 4 * 4 * 3);
        assert_eq!(v0.len(), p0.len());
        assert!(max0 <= min1 + 1e-9);
        assert!(min0 < max0);
        // Positions of rank 1 start where rank 0's slab ends.
        assert!(p1.chunks_exact(3).all(|p| p[0] > max0 - 0.1));
    }

    #[test]
    fn energy_stays_finite_and_simulation_is_deterministic() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok(), "{:?}", outcome.errors());
            let out = outcome.value_of(0).clone();
            assert_eq!(out.app, "CoMD");
            assert_eq!(out.iterations, 10);
            assert!(out.figure_of_merit.is_finite());
            assert!(out.checksum.is_finite());
            out.checksum
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn forces_are_newton_balanced_without_ghosts() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(1));
        let outcome = cluster.run(|ctx| {
            let app = small();
            let (positions, _, _, _) = app.init_particles(0, 1);
            let mut forces = vec![0.0; positions.len()];
            let _ = app.compute_forces(ctx, &positions, &[], &mut forces);
            // Newton's third law: the net force over an isolated system is ~zero.
            let net: f64 = forces.iter().sum();
            Ok(net.abs())
        });
        assert!(*outcome.value_of(0) < 1e-9);
    }

    #[test]
    fn ghost_exchange_only_sends_boundary_strips() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let outcome = cluster.run(|ctx| {
            let app = Comd::new(ComdParams::new(16, 2, 2, 1));
            let world = ctx.world();
            let (positions, _, slab_min, slab_max) = app.init_particles(ctx.rank(), 2);
            let ghosts = app.exchange_ghosts(ctx, &world, &positions, slab_min, slab_max)?;
            // Each rank owns 8 lattice planes of 4 particles; the cutoff of 2.5 at a
            // lattice spacing of 1.2 selects about 3 planes (12 particles) per side.
            Ok((positions.len() / 3, ghosts.len() / 3))
        });
        assert!(outcome.all_ok());
        for r in outcome.results() {
            let (owned, ghosts) = r.as_ref().unwrap();
            assert_eq!(*owned, 32);
            assert!(*ghosts > 0 && *ghosts < *owned);
        }
    }
}
