//! HPCCG: a preconditioned conjugate-gradient proxy on a 27-point stencil.
//!
//! HPCCG solves a sparse linear system arising from a 27-point finite-difference
//! stencil on a 3D "chimney" domain: each MPI rank owns an `nx × ny × nz` block and the
//! blocks are stacked along the z axis. The main loop is a textbook conjugate-gradient
//! iteration: one sparse matrix–vector product (requiring a one-plane halo exchange
//! with the z neighbours), two dot products (all-reduces) and three vector updates per
//! iteration.
//!
//! The FTI-protected data objects follow the paper's three principles: the CG state
//! vectors `x`, `r`, `p` and the iteration counter are defined before the loop, used
//! across iterations and vary across iterations; the matrix (implicit stencil) and the
//! right-hand side are re-derivable and are not checkpointed.

use fti::{Fti, Protectable};
use mpisim::{Comm, MpiError, RankCtx};
use recovery::FaultInjector;

use crate::common::{checksum, distributed_dot, halo_exchange, world_slab, AppOutput, ProxyApp};

/// HPCCG parameters: the per-process grid dimensions (the meaning of the `nx ny nz`
/// command-line arguments of the original proxy) and the CG iteration bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HpccgParams {
    /// Grid points per process in x.
    pub nx: usize,
    /// Grid points per process in y.
    pub ny: usize,
    /// Grid points per process in z.
    pub nz: usize,
    /// Maximum number of CG iterations.
    pub max_iterations: u64,
}

impl HpccgParams {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, nz: usize, max_iterations: u64) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "grid dimensions must be positive"
        );
        assert!(max_iterations > 0, "need at least one iteration");
        HpccgParams {
            nx,
            ny,
            nz,
            max_iterations,
        }
    }

    /// Points per process.
    pub fn local_points(&self) -> usize {
        self.nx * self.ny * self.nz
    }
}

/// The HPCCG proxy application.
#[derive(Debug, Clone)]
pub struct Hpccg {
    params: HpccgParams,
}

impl Hpccg {
    /// Creates an HPCCG instance.
    pub fn new(params: HpccgParams) -> Self {
        Hpccg { params }
    }

    /// The parameters of this instance.
    pub fn params(&self) -> &HpccgParams {
        &self.params
    }

    fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        (iz * self.params.ny + iy) * self.params.nx + ix
    }

    /// Applies the 27-point stencil operator `y = A v`, using the halo planes received
    /// from the z-neighbours (empty slices mean a physical domain boundary). The local
    /// z extent is derived from `v`, because the rank's slab of the global z axis
    /// changes when the world shrinks.
    fn spmv(&self, v: &[f64], below: &[f64], above: &[f64], y: &mut [f64]) -> f64 {
        let (nx, ny) = (self.params.nx, self.params.ny);
        let plane = nx * ny;
        let nz = v.len() / plane;
        let mut flops = 0.0;
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let mut acc = 27.0 * v[self.index(ix, iy, iz)];
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if dx == 0 && dy == 0 && dz == 0 {
                                    continue;
                                }
                                let jx = ix as i64 + dx;
                                let jy = iy as i64 + dy;
                                let jz = iz as i64 + dz;
                                if jx < 0 || jx >= nx as i64 || jy < 0 || jy >= ny as i64 {
                                    continue;
                                }
                                let neighbour = if jz < 0 {
                                    if below.is_empty() {
                                        continue;
                                    }
                                    below[(jy as usize) * nx + jx as usize]
                                } else if jz >= nz as i64 {
                                    if above.is_empty() {
                                        continue;
                                    }
                                    above[(jy as usize) * nx + jx as usize]
                                } else {
                                    v[self.index(jx as usize, jy as usize, jz as usize)]
                                };
                                acc -= neighbour;
                            }
                        }
                    }
                    y[self.index(ix, iy, iz)] = acc;
                    flops += 54.0;
                }
            }
        }
        let _ = plane;
        flops
    }

    /// One halo exchange + SpMV, charging the compute cost.
    fn apply_operator(
        &self,
        ctx: &mut RankCtx,
        comm: &Comm,
        v: &[f64],
        y: &mut [f64],
    ) -> Result<(), MpiError> {
        let plane = self.params.nx * self.params.ny;
        let bottom_plane = v[..plane].to_vec();
        let top_plane = v[v.len() - plane..].to_vec();
        let (below, above) = halo_exchange(ctx, comm, 11, &bottom_plane, &top_plane)?;
        let flops = self.spmv(v, &below, &above, y);
        ctx.compute(flops);
        Ok(())
    }
}

impl ProxyApp for Hpccg {
    fn name(&self) -> &'static str {
        "HPCCG"
    }

    fn iterations(&self) -> u64 {
        self.params.max_iterations
    }

    fn global_units(&self, initial_ranks: usize) -> u64 {
        // One unit = one x/y plane of the global chimney stacked along z.
        (self.params.nz * initial_ranks) as u64
    }

    fn run(
        &self,
        ctx: &mut RankCtx,
        fti: &mut Fti,
        injector: &FaultInjector,
    ) -> Result<AppOutput, MpiError> {
        let world = ctx.world();
        // The global chimney: `nz` planes per rank of the machine's full world,
        // block-partitioned over the ranks that are currently alive. On a full world
        // every rank gets exactly `params.nz` planes, as before.
        let global_nz = self.global_units(ctx.topology().nranks()) as usize;
        let (z_start, local_nz) = world_slab(&world, global_nz);
        let n = self.params.nx * self.params.ny * local_nz;

        // Right-hand side: the classic HPCCG choice b_i = 27 - (number of neighbours),
        // which makes x = 1 the exact solution of the interior problem.
        let b: Vec<f64> = vec![1.0; n];

        // CG state (the FTI-protected data objects).
        let mut x = vec![0.0f64; n];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut iteration: u64 = 0;
        let mut rr = distributed_dot(ctx, &world, &r, &r)?;

        fti.protect_partitioned(0, "x", &x, global_nz as u64);
        fti.protect_partitioned(1, "r", &r, global_nz as u64);
        fti.protect_partitioned(2, "p", &p, global_nz as u64);
        fti.protect(3, "iteration", &iteration);
        fti.protect(4, "rr", &rr);

        if fti.status().is_restart() {
            fti.recover(
                ctx,
                &mut [
                    (0, &mut x as &mut dyn Protectable),
                    (1, &mut r as &mut dyn Protectable),
                    (2, &mut p as &mut dyn Protectable),
                    (3, &mut iteration as &mut dyn Protectable),
                    (4, &mut rr as &mut dyn Protectable),
                ],
            )?;
        }

        let mut ap = vec![0.0f64; n];
        while iteration < self.params.max_iterations {
            let current = iteration + 1;
            injector.maybe_fail(ctx, current)?;

            self.apply_operator(ctx, &world, &p, &mut ap)?;
            let pap = distributed_dot(ctx, &world, &p, &ap)?;
            let alpha = if pap.abs() > 0.0 { rr / pap } else { 0.0 };
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            ctx.compute(4.0 * n as f64);
            let rr_new = distributed_dot(ctx, &world, &r, &r)?;
            let beta = if rr.abs() > 0.0 { rr_new / rr } else { 0.0 };
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
            ctx.compute(2.0 * n as f64);
            rr = rr_new;
            iteration = current;

            if fti.should_checkpoint(iteration) {
                fti.checkpoint(
                    ctx,
                    iteration,
                    &[
                        (0, &x as &dyn Protectable),
                        (1, &r as &dyn Protectable),
                        (2, &p as &dyn Protectable),
                        (3, &iteration as &dyn Protectable),
                        (4, &rr as &dyn Protectable),
                    ],
                )?;
            }
        }

        fti.finalize(ctx)?;
        let local_checksum = checksum(&x);
        let global_checksum = ctx.allreduce_sum_f64(&world, local_checksum)?;
        Ok(AppOutput {
            app: self.name(),
            iterations: iteration,
            checksum: global_checksum,
            figure_of_merit: rr.sqrt(),
            owned_units: (z_start as u64, local_nz as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_standalone;
    use fti::store::CheckpointStore;
    use fti::FtiConfig;
    use mpisim::{Cluster, ClusterConfig};

    fn small() -> Hpccg {
        Hpccg::new(HpccgParams::new(6, 6, 6, 12))
    }

    #[test]
    fn params_validation_and_size() {
        let p = HpccgParams::new(4, 5, 6, 10);
        assert_eq!(p.local_points(), 120);
    }

    #[test]
    #[should_panic]
    fn zero_dimension_panics() {
        let _ = HpccgParams::new(0, 1, 1, 1);
    }

    #[test]
    fn residual_decreases_monotonically_enough() {
        // CG on an SPD stencil matrix must reduce the residual by orders of magnitude
        // within a handful of iterations on a small domain.
        let cluster = Cluster::new(ClusterConfig::with_ranks(2));
        let outcome = cluster.run(|ctx| {
            let app = small();
            run_standalone(&app, ctx, CheckpointStore::shared(), FtiConfig::default())
        });
        assert!(outcome.all_ok(), "{:?}", outcome.errors());
        let out = outcome.value_of(0);
        assert_eq!(out.app, "HPCCG");
        assert_eq!(out.iterations, 12);
        assert!(
            out.figure_of_merit < 1.0,
            "residual {}",
            out.figure_of_merit
        );
        assert!(out.checksum.is_finite());
    }

    #[test]
    fn result_is_deterministic_across_runs() {
        let run = || {
            let cluster = Cluster::new(ClusterConfig::with_ranks(4));
            let outcome = cluster.run(|ctx| {
                run_standalone(
                    &small(),
                    ctx,
                    CheckpointStore::shared(),
                    FtiConfig::default(),
                )
            });
            assert!(outcome.all_ok());
            outcome.value_of(0).checksum
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_ranks_agree_on_the_global_checksum() {
        let cluster = Cluster::new(ClusterConfig::with_ranks(4));
        let outcome = cluster.run(|ctx| {
            run_standalone(
                &small(),
                ctx,
                CheckpointStore::shared(),
                FtiConfig::default(),
            )
        });
        assert!(outcome.all_ok());
        let reference = outcome.value_of(0).checksum;
        for rank in outcome.ranks() {
            assert_eq!(rank.result.as_ref().unwrap().checksum, reference);
        }
    }

    #[test]
    fn spmv_matches_dense_reference_on_tiny_grid() {
        // On a 2x2x2 single-rank grid with zero halo, row sums of the stencil equal
        // 27 - (#in-domain neighbours); applying it to the all-ones vector exposes that.
        let app = Hpccg::new(HpccgParams::new(2, 2, 2, 1));
        let v = vec![1.0; 8];
        let mut y = vec![0.0; 8];
        let flops = app.spmv(&v, &[], &[], &mut y);
        assert!(flops > 0.0);
        // Every point of a 2x2x2 cube has exactly 7 in-domain neighbours.
        for value in y {
            assert_eq!(value, 27.0 - 7.0);
        }
    }
}
